open Ast

let rec pp_ty ppf = function
  | Void -> Format.pp_print_string ppf "void"
  | Bool -> Format.pp_print_string ppf "boolean"
  | Int -> Format.pp_print_string ppf "int"
  | Double -> Format.pp_print_string ppf "double"
  | Str -> Format.pp_print_string ppf "String"
  | Named n -> Format.pp_print_string ppf n
  | Array t -> Format.fprintf ppf "%a[]" pp_ty t

let escape_string s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let binop_name = function
  | Add -> "+" | Sub -> "-" | Mul -> "*" | Div -> "/" | Rem -> "%"
  | Eq -> "==" | Ne -> "!=" | Lt -> "<" | Le -> "<=" | Gt -> ">" | Ge -> ">="
  | And -> "&&" | Or -> "||"

(* fully parenthesized so reparsing is precedence-independent *)
let rec pp_expr ppf = function
  | E_int i -> Format.pp_print_int ppf i
  | E_double f -> Format.fprintf ppf "%.6f" f
  | E_bool true -> Format.pp_print_string ppf "true"
  | E_bool false -> Format.pp_print_string ppf "false"
  | E_string s -> Format.fprintf ppf "\"%s\"" (escape_string s)
  | E_null -> Format.pp_print_string ppf "null"
  | E_var name -> Format.pp_print_string ppf name
  | E_field (e, f) -> Format.fprintf ppf "%a.%s" pp_postfix e f
  | E_index (e, i) -> Format.fprintf ppf "%a[%a]" pp_postfix e pp_expr i
  | E_call (None, name, args) -> Format.fprintf ppf "%s(%a)" name pp_args args
  | E_call (Some recv, name, args) ->
      Format.fprintf ppf "%a.%s(%a)" pp_postfix recv name pp_args args
  | E_new cname -> Format.fprintf ppf "new %s()" cname
  | E_new_array (elem, dims) ->
      (* strip nested array levels into trailing empty brackets *)
      let rec base_of = function Array t -> base_of t | t -> t in
      let rec depth_of = function Array t -> 1 + depth_of t | _ -> 0 in
      Format.fprintf ppf "new %a" pp_ty (base_of elem);
      List.iter (fun d -> Format.fprintf ppf "[%a]" pp_expr d) dims;
      for _ = 1 to depth_of elem do
        Format.pp_print_string ppf "[]"
      done
  | E_binop (op, l, r) ->
      Format.fprintf ppf "(%a %s %a)" pp_expr l (binop_name op) pp_expr r
  | E_unop (Neg, e) -> Format.fprintf ppf "(-%a)" pp_expr e
  | E_unop (Not, e) -> Format.fprintf ppf "(!%a)" pp_expr e

(* postfix positions (receivers of ., [ ], calls) must not introduce a
   bare binop; wrap anything non-postfix in parentheses *)
and pp_postfix ppf e =
  match e with
  | E_binop _ | E_unop _ -> Format.fprintf ppf "(%a)" pp_expr e
  | _ -> pp_expr ppf e

and pp_args ppf args =
  Format.pp_print_list
    ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
    pp_expr ppf args

let pp_lvalue ppf = function
  | L_var name -> Format.pp_print_string ppf name
  | L_field (e, f) -> Format.fprintf ppf "%a.%s" pp_postfix e f
  | L_index (e, i) -> Format.fprintf ppf "%a[%a]" pp_postfix e pp_expr i

let rec pp_stmt ppf = function
  | S_decl (ty, name, None) -> Format.fprintf ppf "%a %s;" pp_ty ty name
  | S_decl (ty, name, Some e) ->
      Format.fprintf ppf "%a %s = %a;" pp_ty ty name pp_expr e
  | S_assign (lv, e) -> Format.fprintf ppf "%a = %a;" pp_lvalue lv pp_expr e
  | S_expr e -> Format.fprintf ppf "%a;" pp_expr e
  | S_if (c, t, []) ->
      Format.fprintf ppf "@[<v2>if (%a) {%a@]@,}" pp_expr c pp_body t
  | S_if (c, t, e) ->
      Format.fprintf ppf "@[<v2>if (%a) {%a@]@,@[<v2>} else {%a@]@,}" pp_expr c
        pp_body t pp_body e
  | S_while (c, body) ->
      Format.fprintf ppf "@[<v2>while (%a) {%a@]@,}" pp_expr c pp_body body
  | S_for (init, cond, update, body) ->
      let strip s =
        (* for-headers have no trailing ';' on init/update *)
        let s = Format.asprintf "%a" pp_stmt s in
        if String.length s > 0 && s.[String.length s - 1] = ';' then
          String.sub s 0 (String.length s - 1)
        else s
      in
      Format.fprintf ppf "@[<v2>for (%s; %a; %s) {%a@]@,}" (strip init) pp_expr
        cond (strip update) pp_body body
  | S_return None -> Format.pp_print_string ppf "return;"
  | S_return (Some e) -> Format.fprintf ppf "return %a;" pp_expr e

and pp_body ppf stmts =
  List.iter (fun s -> Format.fprintf ppf "@,%a" pp_stmt s) stmts

let pp_method ppf (m : method_decl) =
  Format.fprintf ppf "@[<v2>%s%a %s(%a) {%a@]@,}"
    (if m.m_static then "static " else "")
    pp_ty m.m_ret m.m_name
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
       (fun ppf (ty, name) -> Format.fprintf ppf "%a %s" pp_ty ty name))
    m.m_params pp_body m.m_body

let pp_class ppf (c : class_decl) =
  Format.fprintf ppf "@[<v2>%sclass %s%s {"
    (if c.c_remote then "remote " else "")
    c.c_name
    (match c.c_super with Some s -> " extends " ^ s | None -> "");
  List.iter
    (fun (ty, name) -> Format.fprintf ppf "@,%a %s;" pp_ty ty name)
    c.c_fields;
  List.iter
    (fun (ty, name) -> Format.fprintf ppf "@,static %a %s;" pp_ty ty name)
    c.c_statics;
  List.iter (fun m -> Format.fprintf ppf "@,%a" pp_method m) c.c_methods;
  Format.fprintf ppf "@]@,}"

let pp_program ppf (p : program) =
  Format.pp_open_vbox ppf 0;
  List.iteri
    (fun i c ->
      if i > 0 then Format.pp_print_cut ppf ();
      pp_class ppf c)
    p.classes;
  Format.pp_close_box ppf ()

let program_to_string p = Format.asprintf "%a@." pp_program p
