type token =
  | IDENT of string
  | INT_LIT of int
  | DOUBLE_LIT of float
  | STRING_LIT of string
  | KW_CLASS | KW_REMOTE | KW_EXTENDS | KW_STATIC
  | KW_VOID | KW_BOOLEAN | KW_INT | KW_DOUBLE | KW_STRING
  | KW_IF | KW_ELSE | KW_WHILE | KW_FOR | KW_RETURN | KW_NEW
  | KW_TRUE | KW_FALSE | KW_NULL
  | LBRACE | RBRACE | LPAREN | RPAREN | LBRACKET | RBRACKET
  | SEMI | COMMA | DOT
  | ASSIGN
  | PLUS | MINUS | STAR | SLASH | PERCENT
  | PLUSPLUS
  | EQ | NE | LT | LE | GT | GE
  | AMPAMP | BARBAR | BANG
  | EOF

type t = { tok : token; line : int; col : int }

exception Lex_error of string * int * int

let keywords =
  [
    ("class", KW_CLASS); ("remote", KW_REMOTE); ("extends", KW_EXTENDS);
    ("static", KW_STATIC); ("void", KW_VOID); ("boolean", KW_BOOLEAN);
    ("int", KW_INT); ("double", KW_DOUBLE); ("String", KW_STRING);
    ("if", KW_IF); ("else", KW_ELSE); ("while", KW_WHILE); ("for", KW_FOR);
    ("return", KW_RETURN); ("new", KW_NEW); ("true", KW_TRUE);
    ("false", KW_FALSE); ("null", KW_NULL);
  ]

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9')
let is_digit c = c >= '0' && c <= '9'

type cursor = { src : string; mutable pos : int; mutable line : int; mutable col : int }

let peek cu = if cu.pos < String.length cu.src then Some cu.src.[cu.pos] else None

let peek2 cu =
  if cu.pos + 1 < String.length cu.src then Some cu.src.[cu.pos + 1] else None

let advance cu =
  (match peek cu with
  | Some '\n' ->
      cu.line <- cu.line + 1;
      cu.col <- 1
  | Some _ -> cu.col <- cu.col + 1
  | None -> ());
  cu.pos <- cu.pos + 1

let error cu msg = raise (Lex_error (msg, cu.line, cu.col))

let rec skip_trivia cu =
  match (peek cu, peek2 cu) with
  | Some (' ' | '\t' | '\r' | '\n'), _ ->
      advance cu;
      skip_trivia cu
  | Some '/', Some '/' ->
      while peek cu <> None && peek cu <> Some '\n' do
        advance cu
      done;
      skip_trivia cu
  | Some '/', Some '*' ->
      advance cu;
      advance cu;
      let rec close () =
        match (peek cu, peek2 cu) with
        | Some '*', Some '/' ->
            advance cu;
            advance cu
        | Some _, _ ->
            advance cu;
            close ()
        | None, _ -> error cu "unterminated comment"
      in
      close ();
      skip_trivia cu
  | _ -> ()

let lex_number cu =
  let start = cu.pos in
  while (match peek cu with Some c -> is_digit c | None -> false) do
    advance cu
  done;
  let is_float =
    match (peek cu, peek2 cu) with
    | Some '.', Some c when is_digit c -> true
    | _ -> false
  in
  if is_float then begin
    advance cu;
    while (match peek cu with Some c -> is_digit c | None -> false) do
      advance cu
    done;
    DOUBLE_LIT (float_of_string (String.sub cu.src start (cu.pos - start)))
  end
  else INT_LIT (int_of_string (String.sub cu.src start (cu.pos - start)))

let lex_string cu =
  advance cu (* opening quote *);
  let buf = Buffer.create 16 in
  let rec go () =
    match peek cu with
    | Some '"' -> advance cu
    | Some '\\' -> (
        advance cu;
        match peek cu with
        | Some 'n' ->
            Buffer.add_char buf '\n';
            advance cu;
            go ()
        | Some 't' ->
            Buffer.add_char buf '\t';
            advance cu;
            go ()
        | Some (('"' | '\\') as c) ->
            Buffer.add_char buf c;
            advance cu;
            go ()
        | _ -> error cu "bad escape")
    | Some c ->
        Buffer.add_char buf c;
        advance cu;
        go ()
    | None -> error cu "unterminated string"
  in
  go ();
  STRING_LIT (Buffer.contents buf)

let tokenize src =
  let cu = { src; pos = 0; line = 1; col = 1 } in
  let out = ref [] in
  let emit tok line col = out := { tok; line; col } :: !out in
  let rec go () =
    skip_trivia cu;
    let line = cu.line and col = cu.col in
    match peek cu with
    | None -> emit EOF line col
    | Some c when is_ident_start c ->
        let start = cu.pos in
        while (match peek cu with Some c -> is_ident_char c | None -> false) do
          advance cu
        done;
        let word = String.sub cu.src start (cu.pos - start) in
        (match List.assoc_opt word keywords with
        | Some kw -> emit kw line col
        | None -> emit (IDENT word) line col);
        go ()
    | Some c when is_digit c ->
        emit (lex_number cu) line col;
        go ()
    | Some '"' ->
        emit (lex_string cu) line col;
        go ()
    | Some c ->
        let two tok =
          advance cu;
          advance cu;
          emit tok line col
        in
        let one tok =
          advance cu;
          emit tok line col
        in
        (match (c, peek2 cu) with
        | '+', Some '+' -> two PLUSPLUS
        | '=', Some '=' -> two EQ
        | '!', Some '=' -> two NE
        | '<', Some '=' -> two LE
        | '>', Some '=' -> two GE
        | '&', Some '&' -> two AMPAMP
        | '|', Some '|' -> two BARBAR
        | '{', _ -> one LBRACE
        | '}', _ -> one RBRACE
        | '(', _ -> one LPAREN
        | ')', _ -> one RPAREN
        | '[', _ -> one LBRACKET
        | ']', _ -> one RBRACKET
        | ';', _ -> one SEMI
        | ',', _ -> one COMMA
        | '.', _ -> one DOT
        | '=', _ -> one ASSIGN
        | '+', _ -> one PLUS
        | '-', _ -> one MINUS
        | '*', _ -> one STAR
        | '/', _ -> one SLASH
        | '%', _ -> one PERCENT
        | '<', _ -> one LT
        | '>', _ -> one GT
        | '!', _ -> one BANG
        | _ -> error cu (Printf.sprintf "unexpected character %C" c));
        go ()
  in
  go ();
  List.rev !out

let token_to_string = function
  | IDENT s -> Printf.sprintf "identifier %S" s
  | INT_LIT i -> Printf.sprintf "int %d" i
  | DOUBLE_LIT f -> Printf.sprintf "double %g" f
  | STRING_LIT s -> Printf.sprintf "string %S" s
  | KW_CLASS -> "'class'" | KW_REMOTE -> "'remote'" | KW_EXTENDS -> "'extends'"
  | KW_STATIC -> "'static'" | KW_VOID -> "'void'" | KW_BOOLEAN -> "'boolean'"
  | KW_INT -> "'int'" | KW_DOUBLE -> "'double'" | KW_STRING -> "'String'"
  | KW_IF -> "'if'" | KW_ELSE -> "'else'" | KW_WHILE -> "'while'"
  | KW_FOR -> "'for'" | KW_RETURN -> "'return'" | KW_NEW -> "'new'"
  | KW_TRUE -> "'true'" | KW_FALSE -> "'false'" | KW_NULL -> "'null'"
  | LBRACE -> "'{'" | RBRACE -> "'}'" | LPAREN -> "'('" | RPAREN -> "')'"
  | LBRACKET -> "'['" | RBRACKET -> "']'" | SEMI -> "';'" | COMMA -> "','"
  | DOT -> "'.'" | ASSIGN -> "'='" | PLUS -> "'+'" | MINUS -> "'-'"
  | STAR -> "'*'" | SLASH -> "'/'" | PERCENT -> "'%'" | PLUSPLUS -> "'++'"
  | EQ -> "'=='" | NE -> "'!='" | LT -> "'<'" | LE -> "'<='" | GT -> "'>'"
  | GE -> "'>='" | AMPAMP -> "'&&'" | BARBAR -> "'||'" | BANG -> "'!'"
  | EOF -> "end of input"
