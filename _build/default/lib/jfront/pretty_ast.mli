(** Pretty-printer for the surface AST.

    Output is valid input for {!Parser.parse}: expressions are printed
    fully parenthesized, so [parse (to_string ast) = ast] structurally
    (checked by a property test). *)

val pp_ty : Format.formatter -> Ast.ty -> unit
val pp_expr : Format.formatter -> Ast.expr -> unit
val pp_stmt : Format.formatter -> Ast.stmt -> unit
val pp_class : Format.formatter -> Ast.class_decl -> unit
val pp_program : Format.formatter -> Ast.program -> unit
val program_to_string : Ast.program -> string
