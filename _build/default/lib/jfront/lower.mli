(** Lowering from the surface AST to JIR.

    Name resolution and typing rules:
    - classes may be declared in any order; fields resolve through the
      [extends] chain;
    - non-static methods of {e non-remote} classes receive an implicit
      [this] parameter; bare identifiers resolve local > parameter >
      instance field (via [this]) > static of the class;
    - methods of [remote] classes take no [this] (JavaParty-style: the
      runtime locates the object); their state must live in statics —
      referencing instance fields from one is an error;
    - [recv.m(...)] dispatches on the static class of [recv]: a remote
      class becomes a [Remote_call] (one optimizable call site), others
      a direct local [Call];
    - [Class.static_field] and bare static names are both accepted;
    - [&&]/[||] short-circuit; [new t[n][m]] allocates the inner arrays
      (a loop), as in Java;
    - string literals in expressions lower to tracked [New_str]
      allocations.

    The result always passes {!Jir.Typecheck.check}. *)

exception Compile_error of string

(** Compile surface source text to a JIR program.
    @raise Compile_error on name/type errors (parse and lex errors are
    re-raised as [Compile_error] too, with positions). *)
val compile : string -> Jir.Program.t

val compile_result : string -> (Jir.Program.t, string) result

(** Convenience lookups on the compiled program. *)

val class_named : Jir.Program.t -> string -> Jir.Types.class_id
val method_named : Jir.Program.t -> string -> Jir.Types.method_id
val static_named : Jir.Program.t -> string -> Jir.Types.static_id
