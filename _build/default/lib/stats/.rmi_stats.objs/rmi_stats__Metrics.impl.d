lib/stats/metrics.ml: Atomic Format
