lib/stats/ascii_table.mli:
