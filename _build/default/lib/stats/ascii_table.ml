type align = Left | Right

let pad align width s =
  let n = String.length s in
  if n >= width then s
  else
    let fill = String.make (width - n) ' ' in
    match align with Left -> s ^ fill | Right -> fill ^ s

let default_aligns ncols =
  List.init ncols (fun i -> if i = 0 then Left else Right)

let render ~headers ?aligns rows =
  let ncols = List.length headers in
  List.iteri
    (fun i row ->
      if List.length row <> ncols then
        invalid_arg
          (Printf.sprintf "Ascii_table.render: row %d has %d cells, expected %d"
             i (List.length row) ncols))
    rows;
  let aligns =
    match aligns with Some a when List.length a = ncols -> a | _ -> default_aligns ncols
  in
  let widths = Array.make ncols 0 in
  let account row =
    List.iteri (fun i cell -> widths.(i) <- max widths.(i) (String.length cell)) row
  in
  account headers;
  List.iter account rows;
  let line row =
    let cells =
      List.mapi (fun i cell -> pad (List.nth aligns i) widths.(i) cell) row
    in
    "| " ^ String.concat " | " cells ^ " |"
  in
  let rule =
    "+" ^ String.concat "+" (Array.to_list (Array.map (fun w -> String.make (w + 2) '-') widths)) ^ "+"
  in
  let buf = Buffer.create 256 in
  Buffer.add_string buf rule;
  Buffer.add_char buf '\n';
  Buffer.add_string buf (line headers);
  Buffer.add_char buf '\n';
  Buffer.add_string buf rule;
  Buffer.add_char buf '\n';
  List.iter
    (fun row ->
      Buffer.add_string buf (line row);
      Buffer.add_char buf '\n')
    rows;
  Buffer.add_string buf rule;
  Buffer.contents buf

let print ~title ~headers ?aligns rows =
  print_endline title;
  print_endline (render ~headers ?aligns rows)
