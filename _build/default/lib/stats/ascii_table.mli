(** Minimal ASCII table rendering used by the benchmark harness to
    print the paper's tables. *)

type align = Left | Right

(** [render ~headers ?aligns rows] lays the table out with one column
    per header, padding cells to the widest entry.  [aligns] defaults
    to left for the first column and right for the rest, matching the
    paper's table style.

    @raise Invalid_argument if a row's width differs from [headers]. *)
val render : headers:string list -> ?aligns:align list -> string list list -> string

(** [print ~title ~headers rows] renders with a title line on stdout. *)
val print : title:string -> headers:string list -> ?aligns:align list -> string list list -> unit
