(* Compiler walkthrough: reproduces the paper's Section 2/3 examples
   and prints what each analysis concludes — the heap graph of Figure
   2, the (logical, physical) tuple termination of Figures 3/4, the
   cycle verdicts of Figures 8/9, and the escape verdicts of Figures
   10/11, using the application models shipped in this repository.

   Run with: dune exec examples/compiler_walkthrough.exe *)

module HA = Rmi_core.Heap_analysis

let walkthrough name (compiled : Rmi_apps.App_common.compiled) =
  Format.printf "==== %s ====@." name;
  Format.printf "%s@." (Rmi_core.Optimizer.report compiled.opt)

let () =
  Format.printf
    "Heap graphs are per allocation *site*, not per object (Figure 2);@.";
  Format.printf
    "remote calls clone argument subgraphs with fixed physical numbers@.";
  Format.printf "so the data-flow of Figure 3 terminates (Figure 4).@.@.";
  walkthrough "linked list (Figure 14)" (Rmi_apps.Linked_list.compiled ());
  walkthrough "2D array (Figures 12/13)" (Rmi_apps.Array_bench.compiled ());
  walkthrough "LU" (Rmi_apps.Lu.compiled ());
  walkthrough "superoptimizer" (Rmi_apps.Superopt.compiled ());
  walkthrough "webserver" (Rmi_apps.Webserver.compiled ());
  (* the raw heap graph of the array model, for the curious *)
  let compiled = Rmi_apps.Array_bench.compiled () in
  Format.printf "raw heap graph of the array model:@.@[<v>%a@]@."
    Rmi_core.Heap_graph.pp
    (HA.graph compiled.opt.Rmi_core.Optimizer.heap)
