examples/webserver_demo.ml: Format List Rmi_apps Rmi_runtime Rmi_stats
