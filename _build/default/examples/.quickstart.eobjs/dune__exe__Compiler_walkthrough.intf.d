examples/compiler_walkthrough.mli:
