examples/quickstart.ml: Array Builder Format Instr Jir Program Rmi_apps Rmi_core Rmi_runtime Rmi_serial Rmi_stats
