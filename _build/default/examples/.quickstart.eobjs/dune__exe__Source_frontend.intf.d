examples/source_frontend.mli:
