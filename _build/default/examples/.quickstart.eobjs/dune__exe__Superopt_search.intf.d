examples/superopt_search.mli:
