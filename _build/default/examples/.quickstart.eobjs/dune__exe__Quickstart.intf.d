examples/quickstart.mli:
