examples/superopt_search.ml: Format List Rmi_apps Rmi_runtime Rmi_stats
