examples/compiler_walkthrough.ml: Format Rmi_apps Rmi_core
