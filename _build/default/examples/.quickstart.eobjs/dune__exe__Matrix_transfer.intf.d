examples/matrix_transfer.mli:
