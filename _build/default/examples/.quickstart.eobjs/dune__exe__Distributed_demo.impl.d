examples/distributed_demo.ml: Format Jfront Jir Rmi_runtime Rmi_stats
