examples/matrix_transfer.ml: Format List Rmi_apps Rmi_core Rmi_net Rmi_runtime Rmi_stats
