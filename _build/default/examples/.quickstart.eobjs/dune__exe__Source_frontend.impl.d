examples/source_frontend.ml: Format Jfront Jir List Rmi_core Rmi_runtime Rmi_stats
