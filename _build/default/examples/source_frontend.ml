(* Front-end demo: a distributed program written as Java-like source
   text, compiled by the real pipeline (parse -> lower -> typecheck ->
   SSA -> heap/cycle/escape analyses -> plans), then *executed
   distributed*: machine 0 runs main, remote method bodies run on the
   machines that own their objects, and every RMI travels through the
   optimized serialization path.

   Run with: dune exec examples/source_frontend.exe *)

let source =
  {|
  class Vec { double[] xs; }

  remote class MathService {
    // the compiler proves: acyclic, argument reusable, result reusable
    Vec scale(Vec v) {
      Vec r = new Vec();
      r.xs = new double[v.xs.length];
      for (int i = 0; i < v.xs.length; i++) { r.xs[i] = v.xs[i] * 2.0; }
      return r;
    }
  }

  class Driver {
    static double main() {
      MathService s = new MathService();
      Vec v = new Vec();
      v.xs = new double[8];
      for (int i = 0; i < 8; i++) { v.xs[i] = i * 1.0; }
      double last = 0.0;
      for (int r = 0; r < 100; r++) {
        Vec w = s.scale(v);
        last = w.xs[7];
      }
      return last;
    }
  }
  |}

let () =
  print_endline "source:";
  print_endline source;
  let prog = Jfront.Lower.compile source in
  (* show what the compiler decided *)
  let opt = Rmi_core.Optimizer.run prog in
  print_endline "compiler verdicts:";
  print_endline (Rmi_core.Optimizer.report opt);
  (* and run it for real, under each configuration *)
  let entry = Jfront.Lower.method_named prog "Driver.main" in
  List.iter
    (fun config ->
      let r =
        Rmi_runtime.Distributed.run ~config ~mode:Rmi_runtime.Fabric.Sync prog
          ~entry []
      in
      Format.printf
        "%-22s main() = %a   reused %4d objs, %5d allocs, %5d cycle lookups, \
         %6d wire bytes@."
        config.Rmi_runtime.Config.name Jir.Interp.pp_value r.Rmi_runtime.Distributed.value
        r.Rmi_runtime.Distributed.stats.Rmi_stats.Metrics.reused_objs
        r.Rmi_runtime.Distributed.stats.Rmi_stats.Metrics.allocs
        r.Rmi_runtime.Distributed.stats.Rmi_stats.Metrics.cycle_lookups
        r.Rmi_runtime.Distributed.stats.Rmi_stats.Metrics.bytes_sent)
    Rmi_runtime.Config.all
