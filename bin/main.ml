(* rmi-experiments: reproduce the paper's Tables 1-8 from the command
   line.  `rmi-experiments all` prints every table paper-vs-measured;
   `rmi-experiments report` prints the compiler's per-call-site
   analysis decisions for every application model;
   `rmi-experiments pipeline` compares synchronous, pipelined and
   batched issue of the transmission microbenchmarks. *)

open Cmdliner
module E = Rmi.Experiment
module Cli = Rmi.Cli

let scale_arg = Cli.scale_arg
let mode_arg = Cli.mode_arg

let print_timing_and_shape t =
  print_endline (E.render_timing t);
  print_endline "shape vs paper:";
  print_endline (E.shape_summary t);
  print_newline ()

let run_table1 scale mode backend =
  print_timing_and_shape (E.table1 ~scale ~mode ~backend ())

let run_table2 scale mode backend =
  print_timing_and_shape (E.table2 ~scale ~mode ~backend ())

let run_table3_4 scale mode backend ~want3 ~want4 =
  let t = E.table3 ~scale ~mode ~backend () in
  if want3 then print_timing_and_shape t;
  if want4 then
    print_endline
      (E.stats_table ~id:"table4" ~title:"Table 4: LU runtime statistics" t
         Rmi.Paper_data.table4_stats)

let run_table5_6 scale mode backend ~want5 ~want6 =
  let t = E.table5 ~scale ~mode ~backend () in
  if want5 then print_timing_and_shape t;
  if want6 then
    print_endline
      (E.stats_table ~id:"table6" ~title:"Table 6: Superoptimizer runtime statistics" t
         Rmi.Paper_data.table6_stats)

let run_table7_8 scale mode backend ~want7 ~want8 =
  let t = E.table7 ~scale ~mode ~backend () in
  if want7 then print_timing_and_shape t;
  if want8 then
    print_endline
      (E.stats_table ~id:"table8" ~title:"Table 8: Webserver runtime statistics" t
         Rmi.Paper_data.table8_stats)

let table_cmd name doc f =
  Cmd.v (Cmd.info name ~doc)
    Term.(const f $ scale_arg $ mode_arg $ Cli.transport_arg)

let all_cmd =
  let run scale mode backend =
    run_table1 scale mode backend;
    run_table2 scale mode backend;
    run_table3_4 scale mode backend ~want3:true ~want4:true;
    run_table5_6 scale mode backend ~want5:true ~want6:true;
    run_table7_8 scale mode backend ~want7:true ~want8:true
  in
  Cmd.v
    (Cmd.info "all" ~doc:"Reproduce every table of the evaluation (1-8).")
    Term.(const run $ scale_arg $ mode_arg $ Cli.transport_arg)

let pipeline_cmd =
  let run scale mode window faults =
    let reports = E.pipeline_compare ~scale ~mode ~window ?faults () in
    List.iter
      (fun report ->
        print_endline (E.render_pipeline report);
        print_newline ())
      reports;
    (* under --faults the checksums must still agree across variants *)
    let mismatched =
      List.exists
        (fun (r : E.pipeline_report) ->
          match r.E.p_rows with
          | [] -> false
          | first :: rest ->
              List.exists
                (fun (row : E.pipeline_row) ->
                  not (Float.equal row.E.checksum first.E.checksum))
                rest)
        reports
    in
    if mismatched then begin
      prerr_endline "pipeline: checksum mismatch between variants";
      exit 1
    end
  in
  Cmd.v
    (Cmd.info "pipeline"
       ~doc:
         "Run the transmission microbenchmarks three ways — synchronous \
          calls, pipelined futures, pipelined futures + request batching — \
          and compare wire messages, modeled seconds and checksums.  \
          Composes with $(b,--faults): the same comparison over a seeded \
          lossy reliable transport, exiting nonzero if any checksum \
          diverges.")
    Term.(const run $ scale_arg $ mode_arg $ Cli.window_arg $ Cli.faults_arg)

let crash_cmd =
  let run seed crashes calls window =
    let r = E.crash_compare ~seed ~crashes ~calls ~window () in
    print_endline (E.render_crash r);
    let durable_ok =
      List.exists
        (fun (row : E.crash_row) ->
          String.equal row.E.c_variant "durable crash" && row.E.c_ok)
        r.E.c_rows
    in
    if not (durable_ok && r.E.c_replay_equal) then begin
      prerr_endline
        "crash: durable run diverged from fault-free baseline or replay";
      exit 1
    end
  in
  Cmd.v
    (Cmd.info "crash"
       ~doc:
         "Run the crash/restart/failover comparison: a pipelined echo \
          workload fault-free, under a seeded durable server crash \
          (exactly-once across the restart), and under the same schedule \
          with an amnesiac server.  Exits nonzero when the durable run \
          diverges from the baseline or fails to replay byte-identically \
          — the CI crash-seed matrix gates on this.")
    Term.(
      const run $ Cli.seed_arg $ Cli.crashes_arg $ Cli.calls_arg
      $ Cli.window_arg)

let tiers_cmd =
  let tier_calls_arg =
    Arg.(
      value
      & opt int 64
      & info [ "calls" ] ~docv:"N"
          ~doc:"How many swap RMIs each tier variant issues.")
  in
  let run calls window hot_threshold =
    let r = E.tiers_compare ~calls ~window ~hot_threshold () in
    print_endline (E.render_tiers r);
    if not (r.E.t_equal && r.E.t_converged) then begin
      prerr_endline
        "tiers: adaptive run diverged from the generic/aot baselines or \
         never reached the specialized plan";
      exit 1
    end
  in
  Cmd.v
    (Cmd.info "tiers"
       ~doc:
         "Run the same workload under all-generic marshaling, \
          ahead-of-time specialized plans, and the adaptive tier \
          (generic until hot, specialized after), printing the per-window \
          warmup curve.  Exits nonzero unless all replies are \
          byte-identical and the adaptive run converges to the AOT \
          per-call wire cost — the CI tiers gate runs this.")
    Term.(
      const run $ tier_calls_arg $ Cli.window_arg $ Cli.hot_threshold_arg)

let wirecost_cmd =
  let wire_calls_arg =
    Arg.(
      value
      & opt int 48
      & info [ "calls" ] ~docv:"N"
          ~doc:"How many RMIs each (workload, variant, framing) run issues.")
  in
  let wire_seed_arg =
    Arg.(
      value
      & opt int 42
      & info [ "seed" ] ~docv:"N"
          ~doc:
            "Seed for the lossy fault schedule of the reliable+faults \
             variant; both framings replay it deterministically.")
  in
  let run calls window seed =
    let r = E.wirecost_compare ~calls ~window ~seed () in
    print_endline (E.render_wirecost r);
    if not (r.E.u_frames_ok && r.E.u_results_ok && r.E.u_gate_ok) then begin
      prerr_endline
        "wirecost: zero-copy framing drifted from the legacy frames, \
         results diverged, or the copy reduction missed the 50% gate";
      exit 1
    end
  in
  Cmd.v
    (Cmd.info "wirecost"
       ~doc:
         "Compare the legacy copy-based wire framing against the zero-copy \
          pooled framing on the paper-table message shapes, over raw, \
          reliable, batched and seeded-lossy links.  Digests every physical \
          frame to prove both framings byte-identical on the wire, and \
          exits nonzero on any frame or result drift — or if the enveloped \
          variants cut fewer than 50% of the copied bytes per call.  The \
          CI bench-smoke job gates on this.")
    Term.(const run $ wire_calls_arg $ Cli.window_arg $ wire_seed_arg)

let alloc_cmd =
  let alloc_calls_arg =
    Arg.(
      value
      & opt int 192
      & info [ "calls" ] ~docv:"N"
          ~doc:
            "How many measured RMIs each (workload, variant, allocator) run \
             issues (after a warmup quarter).")
  in
  let alloc_seed_arg =
    Arg.(
      value
      & opt int 42
      & info [ "seed" ] ~docv:"N"
          ~doc:
            "Seed for the lossy fault schedule of the reliable+faults \
             variant; both allocator modes replay it deterministically.")
  in
  let json_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~docv:"FILE"
          ~doc:"Also write the report as JSON to $(docv) (BENCH_alloc.json).")
  in
  let run calls window seed json =
    let r = E.alloc_compare ~calls ~window ~seed () in
    print_endline (E.render_alloc r);
    (match json with
    | None -> ()
    | Some file ->
        let oc = open_out file in
        output_string oc (E.alloc_json r);
        close_out oc;
        Printf.printf "wrote %s\n" file);
    if
      not
        (r.E.al_frames_ok && r.E.al_results_ok && r.E.al_gate_ok
       && r.E.al_arena_ok)
    then begin
      prerr_endline
        "alloc: arena decoding drifted from the GC-heap frames or results, \
         the gated row missed the 50% minor-words cut, or the arena failed \
         to engage on a no-reuse row";
      exit 1
    end
  in
  Cmd.v
    (Cmd.info "alloc"
       ~doc:
         "Compare GC-heap decoding against arena decoding on the \
          paper-table message shapes, each through its site-specialized \
          plan (the matrix through the flat struct-of-arrays step), over \
          raw, reliable, seeded-lossy and reliable-with-reuse links.  \
          Digests every physical frame to prove both allocators \
          byte-identical on the wire, and exits nonzero on any frame or \
          result drift — or if the gated row misses the 50% \
          minor-words-per-call cut against the checked-in baseline, or the \
          arena fails to engage where the escape analysis licenses it.  \
          The CI alloc-gate job runs this.")
    Term.(
      const run $ alloc_calls_arg $ Cli.window_arg $ alloc_seed_arg $ json_arg)

let load_cmd =
  let load_calls_arg =
    Arg.(
      value
      & opt int 600
      & info [ "calls" ] ~docv:"N"
          ~doc:"How many RMIs each (workload, variant, domains) run issues.")
  in
  let load_window_arg =
    Arg.(
      value
      & opt int 32
      & info [ "window" ] ~docv:"N"
          ~doc:"Pipelining depth of the load client.")
  in
  let load_seed_arg =
    Arg.(
      value
      & opt int 42
      & info [ "seed" ] ~docv:"N"
          ~doc:
            "Seed for the lossy fault schedule of the reliable+faults \
             variant; every domain count replays it deterministically.")
  in
  let spin_arg =
    Arg.(
      value
      & opt int 24
      & info [ "spin" ] ~docv:"K"
          ~doc:
            "Handler spin factor: the server re-folds each argument \
             $(docv) times so dispatch is CPU-bound and worker count \
             governs throughput.")
  in
  let speedup_floor_arg =
    Arg.(
      value
      & opt float 2.0
      & info [ "speedup-floor" ] ~docv:"X"
          ~doc:
            "Minimum matrix16x16/reliable throughput ratio, hi-domain \
             over 1-domain, enforced when the host has the cores.")
  in
  let tail_tol_arg =
    Arg.(
      value
      & opt float 8.0
      & info [ "tail-tol" ] ~docv:"X"
          ~doc:
            "Maximum p999 latency ratio, hi-domain over 1-domain, \
             enforced when the host has the cores.")
  in
  let json_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~docv:"FILE"
          ~doc:"Also write the report as JSON to $(docv) (BENCH_load.json).")
  in
  let run calls window servers domains queue_depth spin seed speedup_floor
      tail_tol json =
    let r =
      E.load_compare ~calls ~window ~servers ~domains ~queue_depth ~spin ~seed
        ~speedup_floor ~tail_tol ()
    in
    print_endline (E.render_load r);
    (match json with
    | None -> ()
    | Some file ->
        let oc = open_out file in
        output_string oc (E.load_json r);
        close_out oc;
        Printf.printf "wrote %s\n" file);
    if not r.E.l_gate_ok then begin
      prerr_endline
        "load: reply digests diverged across domain counts, or the \
         multi-domain run missed the throughput/tail gate";
      exit 1
    end
  in
  Cmd.v
    (Cmd.info "load"
       ~doc:
         "Drive the paper-table message shapes (chain100, matrix16x16) \
          from a pipelined client round-robin across $(b,--servers) \
          machines, over reliable, batched and seeded-lossy links — once \
          on the serial runtime and once on the work-stealing pool of \
          $(b,--domains) worker domains with $(b,--queue-depth)-bounded \
          admission.  Prints throughput and p50/p99/p999 client RTT per \
          domain count and exits nonzero when any reply digest differs \
          across domain counts, or (on hosts with the cores) when the \
          pool misses the $(b,--speedup-floor) throughput gate or the \
          $(b,--tail-tol) p999 bound.  The CI load-smoke job gates on \
          this.")
    Term.(
      const run $ load_calls_arg $ load_window_arg $ Cli.servers_arg
      $ Cli.domains_arg $ Cli.queue_depth_arg $ spin_arg $ load_seed_arg
      $ speedup_floor_arg $ tail_tol_arg $ json_arg)

let transport_cmd =
  let t_calls_arg =
    Arg.(
      value
      & opt int 64
      & info [ "calls" ] ~docv:"N"
          ~doc:"How many RMIs each (workload, variant, backend) run issues.")
  in
  let t_window_arg =
    Arg.(
      value
      & opt int 8
      & info [ "window" ] ~docv:"N"
          ~doc:"Pipelining depth of the pipelined variants.")
  in
  let t_seed_arg =
    Arg.(
      value
      & opt int 42
      & info [ "seed" ] ~docv:"N"
          ~doc:"Workload seed (both backends replay the same calls).")
  in
  let json_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~docv:"FILE"
          ~doc:
            "Also write the report as JSON to $(docv) \
             (BENCH_transport.json).")
  in
  let run calls window seed json =
    let r = E.transport_compare ~calls ~window ~seed () in
    print_endline (E.render_transport r);
    (match json with
    | None -> ()
    | Some file ->
        let oc = open_out file in
        output_string oc (E.transport_json r);
        close_out oc;
        Printf.printf "wrote %s\n" file);
    if not (r.E.x_digest_ok && r.E.x_model_ok) then begin
      prerr_endline
        "transport: reply digests diverged between the simulated and \
         socket backends, or the wire counters / modeled seconds drifted";
      exit 1
    end
  in
  Cmd.v
    (Cmd.info "transport"
       ~doc:
         "Run identical workloads (chain100, matrix16x16; sequential, \
          pipelined and pipelined+batch) over the simulated interconnect \
          and over real loopback TCP sockets, and compare issue-order \
          reply digests, wire counters, modeled seconds and wall clock.  \
          Exits nonzero unless the digests are byte-identical and the \
          modeled cost survives the transport substitution — the CI \
          socket-smoke job gates on this.")
    Term.(const run $ t_calls_arg $ t_window_arg $ t_seed_arg $ json_arg)

let chaos_cmd =
  let sweep_arg =
    Arg.(
      value
      & opt int 300
      & info [ "sweep" ] ~docv:"N"
          ~doc:
            "How many seeds the durable exactly-once sweep covers (each is \
             one full chaos run over a fresh loopback mesh).")
  in
  let json_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~docv:"FILE"
          ~doc:
            "Also write the gate verdicts and the durable run's reply \
             digest as JSON to $(docv) (the CI socket-chaos artifact).")
  in
  let run seed calls window sweep json =
    let r = E.chaos_compare ~seed ~calls ~window ~sweep () in
    print_endline (E.render_chaos r);
    (match json with
    | None -> ()
    | Some file ->
        let oc = open_out file in
        output_string oc (E.chaos_json r);
        close_out oc;
        Printf.printf "wrote %s\n" file);
    if not (E.chaos_ok r) then begin
      prerr_endline
        "chaos: exactly-once broke over the socket transport, or the \
         seeded schedule failed to replay identically";
      exit 1
    end
  in
  Cmd.v
    (Cmd.info "chaos"
       ~doc:
         "Run the crash workload over real loopback TCP under a seeded \
          chaos injector (frame drops/duplicates/holds/corruption, \
          connection severs, endpoint stalls and a durable kill/restart) \
          with the reliable envelope layer stacked over the sockets.  \
          Exits nonzero unless the durable run is exactly-once, the \
          same-seed rerun replays the identical reply stream, the chaos \
          schedule matches the bare fault-simulator schedule \
          byte-for-byte, and every seed of the $(b,--sweep) matrix \
          upholds exactly-once — the CI socket-chaos job gates on this.")
    Term.(
      const run $ Cli.seed_arg $ Cli.calls_arg $ Cli.window_arg $ sweep_arg
      $ json_arg)

let proc_cmd =
  let p_calls_arg =
    Arg.(
      value
      & opt int 64
      & info [ "calls" ] ~docv:"N"
          ~doc:"How many RMIs the client issues per workload.")
  in
  let p_window_arg =
    Arg.(
      value
      & opt int 8
      & info [ "window" ] ~docv:"N"
          ~doc:"Pipelining depth of the client.")
  in
  let p_reliable_arg =
    Arg.(
      value & flag
      & info [ "reliable" ]
          ~doc:
            "Stack the reliable envelope layer (acks, retransmission, \
             epoch fencing) over the TCP links and arm the RPC retry \
             budget.  Every process of the cluster must agree.  With it \
             the cluster rides through a server kill: restart the victim \
             with a bumped $(b,--epoch) and the client completes.")
  in
  let p_epoch_arg =
    Arg.(
      value
      & opt int 0
      & info [ "epoch" ] ~docv:"K"
          ~doc:
            "Incarnation number this process stamps on its frames \
             (default 0).  Restart a killed server with a higher value \
             so peers fence its previous life's frames.")
  in
  let run self listen peers calls window reliable epoch =
    if peers = [] then begin
      prerr_endline "proc: --peers HOST:PORT,... is required";
      exit 1
    end;
    let addrs = Array.of_list peers in
    match
      E.transport_proc ~calls ~window ~reliable ~epoch ?listen ~self ~addrs ()
    with
    | None -> ()
    | Some runs -> print_endline (E.render_proc runs)
  in
  Cmd.v
    (Cmd.info "proc"
       ~doc:
         "Run one machine of a TCP cluster spread over real OS processes.  \
          Start every machine with the same $(b,--peers) list (machine-id \
          order); $(b,--self) picks this process's entry.  Machines 1..n-1 \
          export the wire workloads and serve until shut down; machine 0 \
          drives pipelined RMIs round-robin across them, prints the \
          per-workload reply digests, then shuts the servers down.  See \
          README.md for a three-process quickstart.")
    Term.(
      const run $ Cli.self_arg $ Cli.listen_arg $ Cli.peers_arg $ p_calls_arg
      $ p_window_arg $ p_reliable_arg $ p_epoch_arg)

let report_cmd =
  let run () =
    let apps =
      [
        ("linked list (Fig. 14)", (Rmi_apps.Linked_list.compiled ()).Rmi_apps.App_common.opt);
        ("2D array (Fig. 12)", (Rmi_apps.Array_bench.compiled ()).Rmi_apps.App_common.opt);
        ("LU", (Rmi_apps.Lu.compiled ()).Rmi_apps.App_common.opt);
        ("superoptimizer", (Rmi_apps.Superopt.compiled ()).Rmi_apps.App_common.opt);
        ("webserver", (Rmi_apps.Webserver.compiled ()).Rmi_apps.App_common.opt);
      ]
    in
    List.iter
      (fun (name, opt) ->
        Printf.printf "=== %s ===\n%s\n" name (Rmi_core.Optimizer.report opt))
      apps
  in
  Cmd.v
    (Cmd.info "report"
       ~doc:
         "Print the compiler's heap/cycle/escape analysis decisions and the \
          generated serialization plan for every application's call sites.")
    Term.(const run $ const ())

let compile_cmd =
  let show_jir =
    Arg.(value & flag & info [ "jir" ] ~doc:"Also print the lowered JIR.")
  in
  let show_dot =
    Arg.(
      value & flag
      & info [ "dot" ]
          ~doc:"Print the heap approximation as Graphviz (the paper's Figure 2).")
  in
  let optimize =
    Arg.(
      value & flag
      & info [ "optimize"; "O" ]
          ~doc:"Run the scalar SSA cleanups (constant folding, copy                 propagation, dead-code elimination) before the analyses.")
  in
  let run file show_jir show_dot optimize =
    let ic = open_in_bin file in
    let src = really_input_string ic (in_channel_length ic) in
    close_in ic;
    match Jfront.Lower.compile_result src with
    | Error msg ->
        Printf.eprintf "%s: %s\n" file msg;
        exit 1
    | Ok prog ->
        if show_jir then
          Format.printf "%a@." Jir.Pretty.pp_program prog;
        let opt = Rmi_core.Optimizer.run ~simplify:optimize prog in
        if show_jir && optimize then
          Format.printf "-- after scalar cleanups --@.%a@." Jir.Pretty.pp_program
            prog;
        if show_dot then begin
          let heap = opt.Rmi_core.Optimizer.heap in
          print_string
            (Rmi_core.Heap_graph.to_dot
               ~names:(Jir.Program.class_name prog)
               (Rmi_core.Heap_analysis.graph heap))
        end
        else print_string (Rmi_core.Optimizer.report opt)
  in
  Cmd.v
    (Cmd.info "compile"
       ~doc:
         "Compile a source file (Java-like syntax, see examples/*.jav) and           print the optimizer's per-call-site decisions.")
    Term.(const run $ Cli.file_arg $ show_jir $ show_dot $ optimize)

let breakdown_cmd =
  let run scale mode backend =
    (* cost-model component breakdown for the fully optimized run of
       each application *)
    let model = Rmi.Costmodel.myrinet_2003 in
    let show name (stats : Rmi.Metrics.snapshot) =
      Printf.printf "\n%s (site + reuse + cycle):\n" name;
      List.iter
        (fun (label, seconds) ->
          if seconds > 0.0 then
            Printf.printf "  %-18s %10.6f s\n" label seconds)
        (Rmi.Costmodel.breakdown model stats)
    in
    let t1 = E.table1 ~scale ~mode ~backend () in
    let t2 = E.table2 ~scale ~mode ~backend () in
    let full t =
      (List.find
         (fun r -> r.E.config.Rmi.Config.name = "site + reuse + cycle")
         t.E.rows)
        .E.stats
    in
    show "LinkedList" (full t1);
    show "2D array" (full t2)
  in
  Cmd.v
    (Cmd.info "breakdown"
       ~doc:
         "Show where the modeled time goes, per cost-model component, for           the microbenchmarks under full optimization.")
    Term.(const run $ scale_arg $ mode_arg $ Cli.transport_arg)

let trace_cmd =
  let run () =
    (* a small traced webserver run: 64 retrievals over 2 machines *)
    let compiled = Rmi_apps.Webserver.compiled () in
    let metrics = Rmi.Metrics.create () in
    let fabric =
      Rmi.Fabric.create ~mode:Rmi.Fabric.Sync ~n:2
        ~meta:compiled.Rmi_apps.App_common.meta
        ~config:Rmi.Config.site_reuse_cycle
        ~plans:compiled.Rmi_apps.App_common.plans ~metrics ()
    in
    let tr = Rmi.Trace.create () in
    for m = 0 to 1 do
      Rmi.Node.set_trace (Rmi.Fabric.node fabric m) tr
    done;
    (* reuse the library workload through its public entry is simplest:
       run a few manual calls against exported pages *)
    let module Value = Rmi.Value in
    let meth =
      Jfront.Lower.method_named compiled.Rmi_apps.App_common.prog
        "Slave.get_page"
    in
    let site =
      match Jir.Program.remote_callsites compiled.Rmi_apps.App_common.prog with
      | [ (_, s, _, _, _) ] -> s
      | _ -> failwith "unexpected callsites"
    in
    for m = 0 to 1 do
      Rmi.Node.export
        (Rmi.Fabric.node fabric m)
        ~obj:0 ~meth ~has_ret:true
        (fun _ ->
          let p = Value.new_obj ~cls:1 ~nfields:1 in
          p.Value.fields.(0) <- Value.Iarr (Value.new_iarr 64);
          Some (Value.Obj p))
    done;
    let caller = Rmi.Fabric.node fabric 0 in
    for r = 0 to 63 do
      let u = Value.new_obj ~cls:0 ~nfields:1 in
      u.Value.fields.(0) <- Value.Iarr (Value.new_iarr 8);
      ignore
        (Rmi.Node.call caller
           ~dest:(Rmi.Remote_ref.make ~machine:(r mod 2) ~obj:0)
           ~meth ~callsite:site ~has_ret:true [| Value.Obj u |])
    done;
    print_endline "first events:";
    print_string (Rmi.Trace.render ~limit:12 tr);
    print_endline "";
    print_endline "per-callsite latency summary:";
    print_endline (Rmi.Trace.summary tr)
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:"Run a small traced workload and print the RMI event timeline and              per-call-site latency summary.")
    Term.(const run $ const ())

let run_cmd =
  let run file entry machines config mode backend faults batch tier
      hot_threshold =
    (match Cli.check_transport ~backend ~mode faults with
    | Ok () -> ()
    | Error msg ->
        prerr_endline msg;
        exit 1);
    let ic = open_in_bin file in
    let src = really_input_string ic (in_channel_length ic) in
    close_in ic;
    match Jfront.Lower.compile_result src with
    | Error msg ->
        Printf.eprintf "%s: %s\n" file msg;
        exit 1
    | Ok prog -> (
        match Jir.Program.find_method prog entry with
        | None ->
            Printf.eprintf "%s: no method %s\n" file entry;
            exit 1
        | Some m when Array.length m.Jir.Program.params > 0 ->
            Printf.eprintf "%s: entry %s takes parameters\n" file entry;
            exit 1
        | Some m ->
            let config, faults = Cli.apply_faults ~machines config faults in
            let config = if batch then Rmi.Config.with_batching config else config in
            let config = Cli.apply_tier ~tier ~hot_threshold config in
            let r =
              Rmi.Distributed.run ~config ~mode ~backend ~machines ?faults prog
                ~entry:m.Jir.Program.mid []
            in
            Format.printf "%s = %a@." entry Jir.Interp.pp_value
              r.Rmi.Distributed.value;
            let s = r.Rmi.Distributed.stats in
            Format.printf "machines=%d  config=%s  remote objects=%d@." machines
              config.Rmi.Config.name
              r.Rmi.Distributed.remote_objects;
            Format.printf
              "rpcs: %d remote + %d local; reused objs=%d; allocs=%d; cycle \
               lookups=%d; wire bytes=%d@."
              s.Rmi.Metrics.remote_rpcs s.Rmi.Metrics.local_rpcs
              s.Rmi.Metrics.reused_objs s.Rmi.Metrics.allocs
              s.Rmi.Metrics.cycle_lookups s.Rmi.Metrics.bytes_sent;
            Format.printf "wall: %.4fs  modeled: %.4fs@."
              r.Rmi.Distributed.wall_seconds
              (Rmi.Costmodel.modeled_seconds Rmi.Costmodel.myrinet_2003 s);
            if faults <> None then
              Format.printf
                "reliability: retries=%d timeouts=%d dup_drops=%d acks=%d@."
                s.Rmi.Metrics.retries s.Rmi.Metrics.timeouts
                s.Rmi.Metrics.dup_drops s.Rmi.Metrics.acks_sent;
            if tier = Rmi.Config.Adaptive then
              Format.printf
                "tiers: promotions=%d deopts=%d plan cache hits=%d misses=%d@."
                s.Rmi.Metrics.tier_promotions s.Rmi.Metrics.tier_deopts
                s.Rmi.Metrics.plan_cache_hits s.Rmi.Metrics.plan_cache_misses)
  in
  Cmd.v
    (Cmd.info "run"
       ~doc:
         "Compile a source file and execute it as a distributed program:           machine 0 runs the entry method, remote objects are placed           round-robin, and every RMI crosses the simulated cluster through           the selected optimization configuration.")
    Term.(
      const run $ Cli.file_arg $ Cli.entry_arg $ Cli.machines_arg
      $ Cli.config_arg $ mode_arg $ Cli.transport_arg $ Cli.faults_arg
      $ Cli.batch_arg $ Cli.tier_arg $ Cli.hot_threshold_arg)

let cmds =
  [
    table_cmd "table1" "LinkedList transmission (Table 1)." run_table1;
    table_cmd "table2" "16x16 double[][] transmission (Table 2)." run_table2;
    table_cmd "table3" "LU runtime (Table 3)." (fun s m b ->
        run_table3_4 s m b ~want3:true ~want4:false);
    table_cmd "table4" "LU runtime statistics (Table 4)." (fun s m b ->
        run_table3_4 s m b ~want3:false ~want4:true);
    table_cmd "table5" "Superoptimizer runtime (Table 5)." (fun s m b ->
        run_table5_6 s m b ~want5:true ~want6:false);
    table_cmd "table6" "Superoptimizer statistics (Table 6)." (fun s m b ->
        run_table5_6 s m b ~want5:false ~want6:true);
    table_cmd "table7" "Webserver us/page (Table 7)." (fun s m b ->
        run_table7_8 s m b ~want7:true ~want8:false);
    table_cmd "table8" "Webserver statistics (Table 8)." (fun s m b ->
        run_table7_8 s m b ~want7:false ~want8:true);
    all_cmd;
    pipeline_cmd;
    crash_cmd;
    chaos_cmd;
    tiers_cmd;
    wirecost_cmd;
    alloc_cmd;
    load_cmd;
    transport_cmd;
    proc_cmd;
    report_cmd;
    compile_cmd;
    breakdown_cmd;
    trace_cmd;
    run_cmd;
  ]

let () =
  let info =
    Cmd.info "rmi-experiments" ~version:"1.0.0"
      ~doc:
        "Reproduction harness for 'Compiler Optimized Remote Method \
         Invocation' (Veldema & Philippsen, 2003)."
  in
  exit (Cmd.eval (Cmd.group info cmds))
