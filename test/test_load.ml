(* PR 6: the work-stealing multi-domain dispatch runtime.

   The paper's server model is serial — one loop per machine, one
   request at a time.  These tests prove the pooled runtime is a pure
   scheduling substitution: the same pipelined, batched, seeded-lossy
   traffic produces byte-identical replies and exactly-once handler
   execution whether one worker domain serves the cluster or several
   steal from each other, and a request refused by a full admission
   queue is retried to completion, never lost and never re-executed.

   Alongside the end-to-end parity property, the shared mutable state
   the pool leans on is raced directly: the wire buffer pool
   ([Msgbuf.Pool]) and the plan store's compile-outside-the-lock
   protocol ([Plan_store.get]). *)

open Rmi_runtime
module Value = Rmi_serial.Value
module Metrics = Rmi_stats.Metrics
module Fault_sim = Rmi_net.Fault_sim
module Msgbuf = Rmi_wire.Msgbuf
module Plan = Rmi_core.Plan
module Plan_store = Rmi_core.Plan_store

let meta = Rmi_serial.Class_meta.make [ ("Box", [ ("v", Jir.Types.Tint) ]) ]
let m_double = 1

let box v =
  let b = Value.new_obj ~cls:0 ~nfields:1 in
  b.fields.(0) <- Value.Int v;
  Value.Obj b

(* rejects must not trip breakers mid-run and divert calls (same
   setting the load gate uses) *)
let failover =
  { Config.default_failover with Config.breaker_threshold = max_int / 2 }

let base = Config.with_reliable (Config.with_failover failover Config.class_)

(* [calls] pipelined doubling RMIs from machine 0, round-robin across
   [servers] machines, under [domains] pool workers.  Returns the
   reply digest (issue order), the per-call handler execution counts
   and the metrics snapshot. *)
let run_load ~domains ~queue_depth ?faults ~servers ~calls ~window ~config ()
    =
  let metrics = Metrics.create () in
  let n = servers + 1 in
  let sim =
    Option.map
      (fun seed -> Fault_sim.create ~seed ~n Fault_sim.default_lossy)
      faults
  in
  let fabric =
    Fabric.create ~mode:Fabric.Parallel ?faults:sim ~n ~meta
      ~config:(Config.with_domains ~queue_depth domains config)
      ~plans:(Hashtbl.create 4) ~metrics ()
  in
  let execs = Array.init calls (fun _ -> Atomic.make 0) in
  for s = 1 to servers do
    Node.export (Fabric.node fabric s) ~obj:0 ~meth:m_double ~has_ret:true
      (fun args ->
        match args.(0) with
        | Value.Obj o -> (
            match o.Value.fields.(0) with
            | Value.Int id ->
                Atomic.incr execs.(id);
                Some (box ((2 * id) + 1))
            | _ -> failwith "bad box")
        | _ -> failwith "bad arg")
  done;
  let caller = Fabric.node fabric 0 in
  let buf = Buffer.create 256 in
  Fabric.run fabric (fun _ ->
      let i = ref 0 in
      while !i < calls do
        let k = min window (calls - !i) in
        let futures =
          List.init k (fun j ->
              let id = !i + j in
              let dest =
                Remote_ref.make ~machine:(1 + (id mod servers)) ~obj:0
              in
              Node.call_async caller ~dest ~meth:m_double ~callsite:1
                ~has_ret:true [| box id |])
        in
        List.iter
          (fun f ->
            (match Node.Future.await f with
            | Some (Value.Obj o) -> (
                match o.Value.fields.(0) with
                | Value.Int v -> Buffer.add_string buf (string_of_int v)
                | _ -> Buffer.add_char buf '?')
            | _ -> Buffer.add_string buf "none");
            Buffer.add_char buf ';')
          futures;
        i := !i + k
      done);
  ( Digest.to_hex (Digest.string (Buffer.contents buf)),
    execs,
    Metrics.snapshot metrics )

let exactly_once execs = Array.for_all (fun a -> Atomic.get a = 1) execs

(* the headline property: faulty + batched + pipelined traffic across
   two worker domains answers byte-for-byte what one domain answers,
   and every handler body still runs exactly once per logical call —
   over 300 random fault schedules, each replayable from its seed *)
let check_parity seed =
  let calls = 12 in
  let config = Config.with_batching base in
  let run domains =
    run_load ~domains ~queue_depth:2 ~faults:seed ~servers:2 ~calls
      ~window:6 ~config ()
  in
  let d1, e1, s1 = run 1 in
  let d2, e2, s2 = run 2 in
  String.equal d1 d2
  && exactly_once e1 && exactly_once e2
  (* one RTT sample per settled call, under either scheduler *)
  && Metrics.lat_count s1.Metrics.lat_hist = calls
  && Metrics.lat_count s2.Metrics.lat_hist = calls

let prop_domain_parity =
  QCheck.Test.make
    ~name:
      "300 fault seeds: 2-domain pool == 1-domain, exactly-once, \
       batched + pipelined"
    ~count:300
    QCheck.(int_bound 1_000_000)
    check_parity

(* pin one seed forever so a pool regression fails deterministically *)
let fixed_seed_parity () =
  Alcotest.(check bool) "seed 1337" true (check_parity 1337)

(* admission control: a depth-1 queue under a window of 16 calls must
   refuse requests — and every refused call must still complete via
   the client's retry, exactly once *)
let admission_rejects () =
  let calls = 48 in
  let digest, execs, s =
    run_load ~domains:2 ~queue_depth:1 ~servers:4 ~calls ~window:16
      ~config:base ()
  in
  let expect =
    let buf = Buffer.create 256 in
    for id = 0 to calls - 1 do
      Buffer.add_string buf (string_of_int ((2 * id) + 1));
      Buffer.add_char buf ';'
    done;
    Digest.to_hex (Digest.string (Buffer.contents buf))
  in
  Alcotest.(check string) "all replies correct, in issue order" expect digest;
  Alcotest.(check bool) "every handler ran exactly once" true
    (exactly_once execs);
  Alcotest.(check bool) "admission control engaged" true
    (s.Metrics.queue_rejects > 0);
  Alcotest.(check bool) "admitted depth never exceeded the bound" true
    (s.Metrics.queue_depth_hwm <= 1);
  Alcotest.(check int) "one dispatch per call" calls s.Metrics.dispatches

(* the pool's scheduling telemetry on an unconstrained run *)
let steals_are_counted () =
  let calls = 60 in
  let _, execs, s =
    run_load ~domains:2 ~queue_depth:64 ~servers:4 ~calls ~window:12
      ~config:base ()
  in
  Alcotest.(check bool) "exactly once" true (exactly_once execs);
  Alcotest.(check int) "one dispatch per call" calls s.Metrics.dispatches;
  Alcotest.(check bool) "no rejects at depth 64" true
    (s.Metrics.queue_rejects = 0)

(* ---- Msgbuf.Pool under contention ------------------------------- *)

(* four domains hammer one shared buffer pool; every writer acquired
   must come back cleared, private to its holder, and readable back
   verbatim — and the pool must account every acquisition *)
let pool_race () =
  let metrics = Metrics.create () in
  let pool = Msgbuf.Pool.create ~metrics in
  let iters = 2000 in
  let n_domains = 4 in
  let bad = Atomic.make 0 in
  let work d () =
    for i = 1 to iters do
      Msgbuf.Pool.with_writer pool (fun w ->
          if Msgbuf.length w <> 0 then Atomic.incr bad;
          let v = (d * 10_000_000) + i in
          Msgbuf.write_uvarint w v;
          Msgbuf.write_double w (float_of_int v);
          let b = Msgbuf.contents w in
          let r = Msgbuf.Pool.acquire_reader pool b in
          if
            Msgbuf.read_uvarint r <> v
            || Msgbuf.read_double r <> float_of_int v
          then Atomic.incr bad;
          Msgbuf.Pool.release_reader pool r)
    done
  in
  let ds = List.init n_domains (fun d -> Domain.spawn (work d)) in
  List.iter Domain.join ds;
  Alcotest.(check int) "no torn or shared buffer observed" 0
    (Atomic.get bad);
  let s = Metrics.snapshot metrics in
  Alcotest.(check int) "every acquisition accounted"
    (2 * n_domains * iters)
    (s.Metrics.pool_hits + s.Metrics.pool_misses);
  Alcotest.(check bool) "free list actually recycled" true
    (s.Metrics.pool_hits > 0)

(* ---- Plan_store under contention -------------------------------- *)

let mk_source ~hash ~compiles ~version =
  {
    Plan_store.src_hash = (fun _ -> Some (Atomic.get hash));
    Plan_store.src_compile =
      (fun site ->
        Atomic.incr compiles;
        (* widen the race window: several domains should be in here at
           once on the first round *)
        Unix.sleepf 0.001;
        Some
          {
            (Plan.generic ~callsite:site ~nargs:1 ~has_ret:true) with
            Plan.version = Atomic.get version;
          });
  }

(* four domains race [get] on one site: the racing compiles must
   collapse to a single install (first wins, losers adopt it as a
   hit), and flipping the source hash must invalidate exactly once
   while every domain keeps receiving a plan for the site *)
let plan_store_race () =
  let site = 7 in
  let hash = Atomic.make "h1" in
  let compiles = Atomic.make 0 in
  let version = Atomic.make 1 in
  let store = Plan_store.create (mk_source ~hash ~compiles ~version) in
  let iters = 200 in
  let bad = Atomic.make 0 in
  let sweep () =
    let worker () =
      for _ = 1 to iters do
        match Plan_store.get store ~site with
        | Some (p, _) when p.Plan.callsite = site -> ()
        | Some _ | None -> Atomic.incr bad
      done
    in
    let ds = List.init 4 (fun _ -> Domain.spawn worker) in
    List.iter Domain.join ds
  in
  sweep ();
  Alcotest.(check int) "no lookup failed" 0 (Atomic.get bad);
  Alcotest.(check int) "racing compiles collapsed to one install" 1
    (Plan_store.misses store);
  Alcotest.(check int) "no invalidation yet" 0
    (Plan_store.invalidations store);
  Alcotest.(check bool) "compile race actually happened (or at least ran)"
    true
    (Atomic.get compiles >= 1);
  (match Plan_store.get store ~site with
  | Some (p, Plan_store.Hit) ->
      Alcotest.(check int) "installed plan is v1" 1 p.Plan.version
  | _ -> Alcotest.fail "expected a cached hit");
  (* the source slice changes: every domain must converge on the
     recompiled plan through exactly one invalidation *)
  Atomic.set hash "h2";
  Atomic.set version 2;
  sweep ();
  Alcotest.(check int) "still no lookup failed" 0 (Atomic.get bad);
  Alcotest.(check int) "stale hash invalidated exactly once" 1
    (Plan_store.invalidations store);
  Alcotest.(check int) "second install, no clobbering re-installs" 2
    (Plan_store.misses store);
  match Plan_store.get store ~site with
  | Some (p, Plan_store.Hit) ->
      Alcotest.(check int) "recompiled plan is v2" 2 p.Plan.version
  | _ -> Alcotest.fail "expected a cached hit after invalidation"

let suite =
  [
    ( "load",
      [
        Fixtures.qcheck_case prop_domain_parity;
        Alcotest.test_case "fixed seed 1337: 2-domain parity" `Quick
          fixed_seed_parity;
        Alcotest.test_case "depth-1 queue rejects, retries complete" `Quick
          admission_rejects;
        Alcotest.test_case "pool telemetry: dispatches exact, no spurious \
                            rejects" `Quick steals_are_counted;
        Alcotest.test_case "Msgbuf.Pool: 4-domain acquire/release race"
          `Quick pool_race;
        Alcotest.test_case "Plan_store: concurrent compile + invalidate"
          `Quick plan_store_race;
      ] );
  ]
