(* Network substrate tests: mailboxes (including cross-domain blocking
   delivery), the cluster, and the cost model. *)

open Rmi_net
module Metrics = Rmi_stats.Metrics

let mailbox_fifo () =
  let box = Mailbox.create () in
  Alcotest.(check bool) "empty" true (Mailbox.is_empty box);
  Mailbox.send box (Bytes.of_string "a");
  Mailbox.send box (Bytes.of_string "b");
  Alcotest.(check int) "two queued" 2 (Mailbox.length box);
  Alcotest.(check (option string)) "a first" (Some "a")
    (Option.map Bytes.to_string (Mailbox.try_recv box));
  Alcotest.(check string) "b second (blocking)" "b"
    (Bytes.to_string (Mailbox.recv_blocking box));
  Alcotest.(check (option string)) "drained" None
    (Option.map Bytes.to_string (Mailbox.try_recv box))

let mailbox_cross_domain () =
  (* a receiver blocked in recv_blocking must wake when another domain
     sends *)
  let box = Mailbox.create () in
  let receiver = Domain.spawn (fun () -> Bytes.to_string (Mailbox.recv_blocking box)) in
  (* give the receiver a moment to block *)
  Unix.sleepf 0.01;
  Mailbox.send box (Bytes.of_string "wake up");
  Alcotest.(check string) "delivered" "wake up" (Domain.join receiver)

let mailbox_many_messages_cross_domain () =
  let box = Mailbox.create () in
  let n = 1000 in
  let receiver =
    Domain.spawn (fun () ->
        let total = ref 0 in
        for _ = 1 to n do
          total := !total + Bytes.length (Mailbox.recv_blocking box)
        done;
        !total)
  in
  let sent = ref 0 in
  for i = 1 to n do
    let len = 1 + (i mod 7) in
    sent := !sent + len;
    Mailbox.send box (Bytes.create len)
  done;
  Alcotest.(check int) "all bytes delivered" !sent (Domain.join receiver)

let mailbox_recv_deadline () =
  let box = Mailbox.create () in
  Alcotest.(check (option string)) "times out empty" None
    (Option.map Bytes.to_string (Mailbox.recv_deadline box ~seconds:0.005));
  Mailbox.send box (Bytes.of_string "x");
  Alcotest.(check (option string)) "immediate when queued" (Some "x")
    (Option.map Bytes.to_string (Mailbox.recv_deadline box ~seconds:0.005))

let envelope_roundtrip () =
  let payload = Bytes.of_string "hello rmi" in
  let frame =
    Envelope.encode ~kind:Envelope.Data ~src:3 ~epoch:2 ~lseq:77 ~payload ()
  in
  (match Envelope.decode frame with
  | Some ({ Envelope.kind = Data; src = 3; epoch = 2; lseq = 77 }, p) ->
      Alcotest.(check string) "payload intact" "hello rmi" (Bytes.to_string p)
  | _ -> Alcotest.fail "roundtrip failed");
  (* an ack frame has no payload; epoch defaults to 0 *)
  (match
     Envelope.decode
       (Envelope.encode ~kind:Envelope.Ack ~src:0 ~lseq:5 ~payload:Bytes.empty
          ())
   with
  | Some ({ Envelope.kind = Ack; src = 0; epoch = 0; lseq = 5 }, p) ->
      Alcotest.(check int) "empty payload" 0 (Bytes.length p)
  | _ -> Alcotest.fail "ack roundtrip failed");
  (* any single flipped bit must be caught by the checksum *)
  for pos = 0 to Bytes.length frame - 1 do
    for bit = 0 to 7 do
      let bad = Bytes.copy frame in
      Bytes.set bad pos
        (Char.chr (Char.code (Bytes.get bad pos) lxor (1 lsl bit)));
      match Envelope.decode bad with
      | None -> ()
      | Some _ ->
          Alcotest.fail
            (Printf.sprintf "flip at %d.%d went undetected" pos bit)
    done
  done

let fault_sim_deterministic () =
  let feed sim =
    List.concat_map
      (fun i -> Fault_sim.on_send sim ~src:0 ~dest:1 (Bytes.make 8 (Char.chr i)))
      (List.init 64 (fun i -> i))
  in
  let a = Fault_sim.create ~seed:99 ~n:2 Fault_sim.default_lossy in
  let b = Fault_sim.create ~seed:99 ~n:2 Fault_sim.default_lossy in
  let da = feed a and db = feed b in
  Alcotest.(check bool) "same seed, same deliveries" true (da = db);
  Alcotest.(check string) "same seed, same digest" (Fault_sim.digest a)
    (Fault_sim.digest b);
  let c = Fault_sim.create ~seed:100 ~n:2 Fault_sim.default_lossy in
  Alcotest.(check bool) "different seed, different schedule" true
    (feed c <> da || Fault_sim.digest c <> Fault_sim.digest a)

let fault_sim_lossless_is_passthrough () =
  let sim = Fault_sim.create ~seed:1 ~n:2 Fault_sim.lossless in
  let frame = Bytes.of_string "frame" in
  for _ = 1 to 100 do
    Alcotest.(check bool) "delivered unchanged" true
      (Fault_sim.on_send sim ~src:1 ~dest:0 frame = [ frame ])
  done;
  Alcotest.(check string) "no fault decisions logged" "" (Fault_sim.digest sim);
  Alcotest.(check int) "nothing held" 0 (Fault_sim.held_frames sim)

(* the decision log for one known seed, pinned byte-for-byte: any
   change to the sampling order, the log format or the crash machinery
   that silently reshuffles schedules fails here first *)
let fault_sim_digest_pinned () =
  let sim = Fault_sim.create ~seed:7 ~n:2 Fault_sim.default_lossy in
  Fault_sim.set_crash_plan sim
    [
      { Fault_sim.victim = 1; crash_at = 6; restart_after = Some 4;
        durability = Fault_sim.Amnesia };
    ];
  for i = 1 to 12 do
    ignore (Fault_sim.on_send sim ~src:0 ~dest:1 (Bytes.make 8 (Char.chr i)))
  done;
  Alcotest.(check string) "digest pinned for seed 7"
    "0->1 #3 drop\n\
     0->1 #5 drop\n\
     crash m1 @6 amnesia outage=4\n\
     0->1 dead-dest drop @6\n\
     0->1 dead-dest drop @7\n\
     0->1 dead-dest drop @8\n\
     0->1 dead-dest drop @9\n\
     restart m1 @10 epoch=1\n\
     0->1 #7 hold 1\n\
     0->1 release\n"
    (Fault_sim.digest sim)

let recv_deadline_edge_cases () =
  let m = Metrics.create () in
  let c = Cluster.create ~n:2 m in
  (* zero and negative deadlines still drain an already-deliverable
     frame (poll semantics), and return None — not hang — when empty *)
  Cluster.send c ~src:0 ~dest:1 (Bytes.of_string "queued");
  Alcotest.(check (option string)) "zero deadline drains" (Some "queued")
    (Option.map Bytes.to_string (Cluster.recv_deadline c ~self:1 ~seconds:0.0));
  Alcotest.(check (option string)) "zero deadline empty" None
    (Option.map Bytes.to_string (Cluster.recv_deadline c ~self:1 ~seconds:0.0));
  Cluster.send c ~src:0 ~dest:1 (Bytes.of_string "again");
  Alcotest.(check (option string)) "negative deadline drains" (Some "again")
    (Option.map Bytes.to_string
       (Cluster.recv_deadline c ~self:1 ~seconds:(-1.0)));
  Alcotest.(check (option string)) "negative deadline empty" None
    (Option.map Bytes.to_string
       (Cluster.recv_deadline c ~self:1 ~seconds:(-1.0)))

let recv_deadline_expires_while_frames_held () =
  (* every frame is held back one send by the reorder stage: a deadline
     must expire cleanly while the only frame in the system is in the
     simulator's hold queue, then the next send releases it *)
  let m = Metrics.create () in
  let c = Cluster.create ~n:2 m in
  (* max_delay 2 and a seed whose first delay sample is 2: the frame
     stays in the hold queue until the next send on the link *)
  let seed =
    let ok s =
      let probe =
        Fault_sim.create ~seed:s ~n:2
          { Fault_sim.drop = 0.0; duplicate = 0.0; reorder = 1.0;
            corrupt = 0.0; max_delay = 2 }
      in
      ignore (Fault_sim.on_send probe ~src:0 ~dest:1 (Bytes.of_string "x"));
      Fault_sim.held_frames probe = 1
    in
    let rec find s = if ok s then s else find (s + 1) in
    find 1
  in
  let sim =
    Fault_sim.create ~seed ~n:2
      { Fault_sim.drop = 0.0; duplicate = 0.0; reorder = 1.0; corrupt = 0.0;
        max_delay = 2 }
  in
  Cluster.set_faults c sim;
  Cluster.send c ~src:0 ~dest:1 (Bytes.of_string "held");
  Alcotest.(check int) "frame held" 1 (Fault_sim.held_frames sim);
  let t0 = Unix.gettimeofday () in
  Alcotest.(check (option string)) "deadline expires, frame still held" None
    (Option.map Bytes.to_string
       (Cluster.recv_deadline c ~self:1 ~seconds:0.02));
  Alcotest.(check bool) "expired promptly" true
    (Unix.gettimeofday () -. t0 < 5.0);
  (* subsequent sends on the link age the hold queue and release the
     frame; those sends may themselves be held, so flush until both the
     held frame and the releasing frame have surfaced *)
  Cluster.send c ~src:0 ~dest:1 (Bytes.of_string "release");
  let seen = Hashtbl.create 4 in
  let flushes = ref 0 in
  while not (Hashtbl.mem seen "held" && Hashtbl.mem seen "release") do
    (match Cluster.recv_deadline c ~self:1 ~seconds:0.05 with
    | Some b -> Hashtbl.replace seen (Bytes.to_string b) ()
    | None ->
        incr flushes;
        if !flushes > 8 then Alcotest.fail "held frame never released";
        Cluster.send c ~src:0 ~dest:1
          (Bytes.of_string (Printf.sprintf "flush%d" !flushes)))
  done;
  Alcotest.(check bool) "held frame surfaced" true (Hashtbl.mem seen "held");
  Alcotest.(check bool) "releasing frame surfaced" true
    (Hashtbl.mem seen "release")

let cluster_counts_traffic () =
  let m = Metrics.create () in
  let c = Cluster.create ~n:3 m in
  Alcotest.(check int) "size" 3 (Cluster.size c);
  Cluster.send c ~src:0 ~dest:2 (Bytes.create 10);
  Cluster.send c ~src:2 ~dest:0 (Bytes.create 32);
  let s = Metrics.snapshot m in
  Alcotest.(check int) "messages" 2 s.Metrics.msgs_sent;
  Alcotest.(check int) "bytes" 42 s.Metrics.bytes_sent;
  Alcotest.(check bool) "pending" true (Cluster.pending_anywhere c);
  Alcotest.(check bool) "machine 2 has one" true
    (Cluster.try_recv c ~self:2 <> None);
  Alcotest.(check bool) "machine 1 has none" true
    (Cluster.try_recv c ~self:1 = None)

let cluster_rejects_bad_ids () =
  let m = Metrics.create () in
  let c = Cluster.create ~n:2 m in
  Alcotest.(check bool) "bad dest" true
    (try
       Cluster.send c ~src:0 ~dest:5 Bytes.empty;
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "zero machines" true
    (try
       ignore (Cluster.create ~n:0 m);
       false
     with Invalid_argument _ -> true)

let costmodel_components () =
  let model = Costmodel.myrinet_2003 in
  Alcotest.(check (float 1e-12)) "zero counters" 0.0
    (Costmodel.modeled_seconds model Metrics.zero);
  (* per the paper: one optimized RMI is ~40 us = 2 messages + dispatch *)
  let one_rmi =
    { Metrics.zero with Metrics.msgs_sent = 2; remote_rpcs = 1; bytes_sent = 64 }
  in
  let t = Costmodel.modeled_seconds model one_rmi *. 1e6 in
  Alcotest.(check bool)
    (Printf.sprintf "one rmi ~ 40us (%.1f)" t)
    true
    (t > 20.0 && t < 60.0);
  (* allocation cost: the paper's 0.1 us per object *)
  let allocs =
    { Metrics.zero with Metrics.allocs = 100 }
  in
  Alcotest.(check (float 1e-9)) "100 allocs = 10us" 1e-5
    (Costmodel.modeled_seconds model allocs)

let costmodel_breakdown_sorted () =
  let model = Costmodel.myrinet_2003 in
  let s =
    { Metrics.zero with Metrics.msgs_sent = 100; cycle_lookups = 10; allocs = 1 }
  in
  match Costmodel.breakdown model s with
  | (label, top) :: rest ->
      Alcotest.(check string) "messages dominate" "messages" label;
      List.iter
        (fun (_, v) -> Alcotest.(check bool) "descending" true (v <= top))
        rest
  | [] -> Alcotest.fail "empty breakdown"

let costmodel_monotone_in_counters () =
  let model = Costmodel.myrinet_2003 in
  let base =
    { Metrics.zero with Metrics.msgs_sent = 10; bytes_sent = 1000; allocs = 5 }
  in
  let more = { base with Metrics.cycle_lookups = 1000 } in
  Alcotest.(check bool) "more lookups cost more" true
    (Costmodel.modeled_seconds model more > Costmodel.modeled_seconds model base)

let suite =
  [
    ( "net.mailbox",
      [
        Alcotest.test_case "fifo order" `Quick mailbox_fifo;
        Alcotest.test_case "cross-domain wakeup" `Quick mailbox_cross_domain;
        Alcotest.test_case "1000 messages across domains" `Quick
          mailbox_many_messages_cross_domain;
        Alcotest.test_case "timed receive" `Quick mailbox_recv_deadline;
      ] );
    ( "net.envelope",
      [
        Alcotest.test_case "roundtrip + every bit flip detected" `Quick
          envelope_roundtrip;
      ] );
    ( "net.fault_sim",
      [
        Alcotest.test_case "seeded determinism" `Quick fault_sim_deterministic;
        Alcotest.test_case "lossless profile is a pass-through" `Quick
          fault_sim_lossless_is_passthrough;
        Alcotest.test_case "digest pinned byte-for-byte" `Quick
          fault_sim_digest_pinned;
      ] );
    ( "net.cluster",
      [
        Alcotest.test_case "traffic counted" `Quick cluster_counts_traffic;
        Alcotest.test_case "bad ids rejected" `Quick cluster_rejects_bad_ids;
        Alcotest.test_case "recv_deadline zero/negative" `Quick
          recv_deadline_edge_cases;
        Alcotest.test_case "recv_deadline vs held frames" `Quick
          recv_deadline_expires_while_frames_held;
      ] );
    ( "net.costmodel",
      [
        Alcotest.test_case "paper constants" `Quick costmodel_components;
        Alcotest.test_case "breakdown sorted" `Quick costmodel_breakdown_sorted;
        Alcotest.test_case "monotone" `Quick costmodel_monotone_in_counters;
      ] );
  ]
