(* Transport conformance: the same assertions run against the simulated
   interconnect (Sim) and the real TCP loopback mesh (Sock) through the
   backend-erased Transport.t, so the two implementations cannot drift
   on the contract the runtime layer depends on — FIFO delivery per
   pair, self-send loopback, the send accounting, the Envelope.gap
   reservation of send_writer, batch flush bookkeeping and the
   deadline-receive semantics.  A QCheck property then drives both
   backends with the same random frame schedule and requires the
   per-destination receive streams to be equal. *)

open Rmi_net
module Metrics = Rmi_stats.Metrics
module Msgbuf = Rmi_wire.Msgbuf

module type BACKEND = sig
  val label : string
  val make : n:int -> Metrics.t -> Transport.t
end

module Sim_backend : BACKEND = struct
  let label = "sim"
  let make ~n metrics = Sim.create ~n metrics
end

module Sock_backend : BACKEND = struct
  let label = "sock"
  let make ~n metrics = Sock.create_loopback ~n metrics
end

(* the Reliable ARQ adapter stacked over the TCP mesh must satisfy the
   same contract — enveloping, acks and dedup must be invisible to the
   runtime layer, including the accounting *)
module Reliable_sock_backend : BACKEND = struct
  let label = "reliable/sock"
  let make ~n metrics = Reliable.wrap (Sock.create_loopback ~n metrics)
end

(* drive a fresh transport, always releasing its OS resources *)
let with_backend (module B : BACKEND) n f =
  let metrics = Metrics.create () in
  let net = B.make ~n metrics in
  Fun.protect ~finally:(fun () -> Transport.shutdown net) (fun () -> f net metrics)

(* sock delivery crosses the kernel and the event-loop thread, so every
   conformance receive waits rather than polls once *)
let recv_str net ~self =
  match Transport.recv_deadline net ~self ~seconds:5.0 with
  | Some m -> Bytes.to_string m
  | None -> Alcotest.fail "no message within the 5 s conformance deadline"

let drain_empty net ~self =
  Alcotest.(check bool)
    "inbox drained" true
    (Transport.recv_deadline net ~self ~seconds:0.02 = None)

module Conformance (B : BACKEND) = struct
  let fifo_ordering () =
    with_backend (module B) 2 @@ fun net _ ->
    for i = 0 to 15 do
      Transport.send net ~src:0 ~dest:1
        (Bytes.of_string (Printf.sprintf "msg-%02d" i))
    done;
    for i = 0 to 15 do
      Alcotest.(check string)
        "per-pair FIFO"
        (Printf.sprintf "msg-%02d" i)
        (recv_str net ~self:1)
    done;
    drain_empty net ~self:1

  let self_send () =
    with_backend (module B) 2 @@ fun net _ ->
    Transport.send net ~src:1 ~dest:1 (Bytes.of_string "loop");
    Alcotest.(check string) "self-send delivered" "loop" (recv_str net ~self:1);
    drain_empty net ~self:1

  let send_accounting () =
    with_backend (module B) 2 @@ fun net metrics ->
    Transport.send net ~src:0 ~dest:1 (Bytes.of_string "hello");
    Transport.send net ~src:0 ~dest:1 (Bytes.of_string "world!!");
    let s = Metrics.snapshot metrics in
    Alcotest.(check int) "msgs_sent" 2 s.Metrics.msgs_sent;
    Alcotest.(check int) "bytes_sent" 12 s.Metrics.bytes_sent;
    ignore (recv_str net ~self:1);
    ignore (recv_str net ~self:1)

  let writer_gap_contract () =
    with_backend (module B) 2 @@ fun net _ ->
    let payload = Bytes.of_string "framed in place" in
    Msgbuf.Pool.with_writer (Transport.pool net) (fun w ->
        ignore (Msgbuf.reserve w Envelope.gap : int);
        Msgbuf.write_bytes w payload 0 (Bytes.length payload);
        (* offsets inside the reserved gap, or past the end of the
           writer, violate the signature-level contract *)
        (try
           Transport.send_writer net ~src:0 ~dest:1 w
             ~payload_off:(Envelope.gap - 1);
           Alcotest.fail "payload_off inside the gap was accepted"
         with Invalid_argument _ -> ());
        (try
           Transport.send_writer net ~src:0 ~dest:1 w
             ~payload_off:(Msgbuf.length w + 1);
           Alcotest.fail "payload_off past the writer was accepted"
         with Invalid_argument _ -> ());
        Transport.send_writer net ~src:0 ~dest:1 w ~payload_off:Envelope.gap);
    Alcotest.(check string)
      "writer payload delivered" "framed in place" (recv_str net ~self:1);
    drain_empty net ~self:1

  let batching_flush_accounting () =
    with_backend (module B) 2 @@ fun net metrics ->
    Transport.enable_batching net;
    Alcotest.(check bool) "batching on" true (Transport.batching_enabled net);
    Alcotest.(check (list (triple int int int)))
      "first buffered, no flush" []
      (Transport.send_buffered net ~src:0 ~dest:1 (Bytes.of_string "aaaa"));
    Alcotest.(check (list (triple int int int)))
      "second buffered, no flush" []
      (Transport.send_buffered net ~src:0 ~dest:1 (Bytes.of_string "bbbbbb"));
    Alcotest.(check (list (triple int int int)))
      "one group: dest 1, 2 msgs, 10 logical bytes"
      [ (1, 2, 10) ]
      (Transport.flush net ~src:0);
    let s = Metrics.snapshot metrics in
    Alcotest.(check int) "one physical frame" 1 s.Metrics.msgs_sent;
    Alcotest.(check int) "sum of logical payloads" 10 s.Metrics.bytes_sent;
    (* the receiver still sees the two logical messages, in order *)
    Alcotest.(check string) "first logical" "aaaa" (recv_str net ~self:1);
    Alcotest.(check string) "second logical" "bbbbbb" (recv_str net ~self:1);
    drain_empty net ~self:1;
    Transport.disable_batching net;
    Alcotest.(check bool) "batching off" false (Transport.batching_enabled net)

  let deadline_recv () =
    with_backend (module B) 2 @@ fun net _ ->
    let t0 = Unix.gettimeofday () in
    Alcotest.(check bool)
      "empty inbox times out" true
      (Transport.recv_deadline net ~self:1 ~seconds:0.05 = None);
    Alcotest.(check bool)
      "waited for the deadline" true
      (Unix.gettimeofday () -. t0 >= 0.04);
    Transport.send net ~src:0 ~dest:1 (Bytes.of_string "late");
    Alcotest.(check string) "arrival ends the wait" "late" (recv_str net ~self:1)

  (* regression: a message landing between recv_deadline's internal
     polls must be returned, never dequeued into a discarded comparison.
     The stagger sweeps the send across the receiver's poll cycle so
     some iterations hit every window. *)
  let deadline_recv_race () =
    with_backend (module B) 2 @@ fun net _ ->
    for i = 0 to 199 do
      let expected = Printf.sprintf "race-%03d" i in
      let sender =
        Thread.create
          (fun () ->
            Unix.sleepf (float_of_int (i mod 20) *. 1e-5);
            Transport.send net ~src:0 ~dest:1 (Bytes.of_string expected))
          ()
      in
      (match Transport.recv_deadline net ~self:1 ~seconds:5.0 with
      | Some m ->
          Alcotest.(check string)
            "raced arrival returned" expected (Bytes.to_string m)
      | None -> Alcotest.fail ("raced arrival dropped: " ^ expected));
      Thread.join sender
    done;
    drain_empty net ~self:1

  let suite =
    List.map
      (fun (name, f) -> Alcotest.test_case (B.label ^ ": " ^ name) `Quick f)
      [
        ("fifo ordering", fifo_ordering);
        ("self-send", self_send);
        ("send accounting", send_accounting);
        ("send_writer gap contract", writer_gap_contract);
        ("batching flush accounting", batching_flush_accounting);
        ("deadline recv", deadline_recv);
        ("deadline recv races arrival", deadline_recv_race);
      ]
end

module Sim_conformance = Conformance (Sim_backend)
module Sock_conformance = Conformance (Sock_backend)
module Reliable_sock_conformance = Conformance (Reliable_sock_backend)

(* ------------------------------------------------------------------ *)
(* cross-backend stream equality                                       *)
(* ------------------------------------------------------------------ *)

(* a random schedule of frames from machine 0 to machines 1 and 2 must
   produce identical per-destination receive streams on both backends.
   Payloads carry a leading marker byte so none is accidentally tagged
   as a batch envelope — a frame whose first byte is the batch code is
   a garbled batch, which both backends rightly drop. *)
let schedule_gen =
  QCheck.list_of_size (QCheck.Gen.int_range 1 40)
    (QCheck.pair (QCheck.int_range 1 2)
       (QCheck.map
          (fun s -> "m" ^ s)
          (QCheck.string_of_size (QCheck.Gen.int_range 0 63))))

let streams_of (module B : BACKEND) schedule =
  with_backend (module B) 3 @@ fun net _ ->
  List.iter
    (fun (dest, payload) ->
      Transport.send net ~src:0 ~dest (Bytes.of_string payload))
    schedule;
  List.map
    (fun dest ->
      let expect =
        List.length (List.filter (fun (d, _) -> d = dest) schedule)
      in
      List.init expect (fun _ -> recv_str net ~self:dest))
    [ 1; 2 ]

let stream_equality =
  QCheck.Test.make ~count:25 ~name:"sim and sock deliver equal streams"
    schedule_gen (fun schedule ->
      streams_of (module Sim_backend) schedule
      = streams_of (module Sock_backend) schedule)

let suite =
  [
    ( "transport conformance",
      Sim_conformance.suite @ Sock_conformance.suite
      @ Reliable_sock_conformance.suite
      @ [ QCheck_alcotest.to_alcotest stream_equality ] );
  ]
