(* JIR encodings of the paper's running examples (Figures 2-14), shared
   by the analysis test suites.  Each builder returns the finished
   program plus the handles the assertions need. *)

open Jir
module B = Builder

(* SSA renaming gives allocation results fresh variable ids, so tests
   must not capture builder-time ids.  [alloc_dst prog mid cls] finds
   the (unique) variable holding the result of [new cls] in [mid],
   whatever its current name. *)
let alloc_dst prog mid cls =
  let m = Program.method_decl prog mid in
  let found = ref None in
  Array.iter
    (fun (blk : Instr.block) ->
      List.iter
        (fun i ->
          match i with
          | Instr.Alloc { dst; cls = c; _ } when c = cls -> found := Some dst
          | _ -> ())
        blk.body)
    m.blocks;
  match !found with
  | Some v -> v
  | None -> failwith "Fixtures.alloc_dst: no allocation of that class"

(* Figure 2: Foo{Bar bar; double[][][] a} with a 2x3x4 array. *)
type fig2 = {
  f2_prog : Program.t;
  f2_main : Types.method_id;
  f2_foo_cls : Types.class_id;
  f2_bar_fld : Types.field_ref;
  f2_a_fld : Types.field_ref;
}

let fig2 () =
  let b = B.create () in
  let bar = B.declare_class b "Bar" in
  let foo = B.declare_class b "Foo" in
  let bar_fld = B.add_field b foo "bar" (Tobject bar) in
  let a_fld = B.add_field b foo "a" (Tarray (Tarray (Tarray Tdouble))) in
  let main = B.declare_method b ~name:"main" ~params:[] ~ret:Tvoid () in
  B.define b main (fun mb ->
      let f = B.alloc mb foo in
      let bv = B.alloc mb bar in
      B.store_field mb f bar_fld (Var bv);
      let a3 = B.alloc_array mb (Tarray (Tarray Tdouble)) (Int 2) in
      let a2 = B.alloc_array mb (Tarray Tdouble) (Int 3) in
      let a1 = B.alloc_array mb Tdouble (Int 4) in
      B.store_elem mb a2 (Int 0) (Var a1);
      B.store_elem mb a3 (Int 0) (Var a2);
      B.store_field mb f a_fld (Var a3);
      B.ret mb None);
  {
    f2_prog = B.finish b;
    f2_main = main;
    f2_foo_cls = foo;
    f2_bar_fld = bar_fld;
    f2_a_fld = a_fld;
  }

(* Figures 3/4: remote identity method called in a loop — the data-flow
   cycle that the (logical, physical) tuples must terminate. *)
type fig3 = {
  f3_prog : Program.t;
  f3_zoo : Types.method_id;
  f3_foo : Types.method_id;
  f3_site : Types.site;  (* the remote call site *)
  f3_t_init_var : Types.var;  (* pre-SSA var holding t *)
}

let fig3 ?(iterations = 10) () =
  let b = B.create () in
  let data = B.declare_class b "Data" in
  let foo_cls = B.declare_class b ~remote:true "Foo" in
  let foo =
    B.declare_method b ~owner:foo_cls ~name:"Foo.foo"
      ~params:[ Tobject data ] ~ret:(Tobject data) ()
  in
  B.define b foo (fun mb -> B.ret mb (Some (Var (B.param mb 0))));
  let zoo = B.declare_method b ~name:"zoo" ~params:[] ~ret:Tvoid () in
  let site = ref (-1) in
  let t_var = ref (-1) in
  B.define b zoo (fun mb ->
      let me = B.alloc mb foo_cls in
      let t = B.fresh mb (Tobject data) in
      t_var := t;
      let d = B.alloc mb data in
      B.move mb t (Var d);
      B.loop_up mb ~from:(Int 0) ~limit:(Int iterations) (fun _i ->
          match B.rcall mb (Var me) foo [ Var t ] with
          | Some result ->
              (* recover the allocated callsite id: it is the site of the
                 rcall, which the builder numbered just before [result];
                 recorded below via the program scan instead *)
              B.move mb t (Var result)
          | None -> assert false);
      B.ret mb None);
  let prog = B.finish b in
  (match Program.remote_callsites prog with
  | [ (_, s, _, _, _) ] -> site := s
  | _ -> failwith "fig3: expected exactly one remote callsite");
  {
    f3_prog = prog;
    f3_zoo = zoo;
    f3_foo = foo;
    f3_site = !site;
    f3_t_init_var = !t_var;
  }

(* Figure 8: the same object passed twice to one remote call. *)
type simple_site = {
  s_prog : Program.t;
  s_site : Types.site;
  s_caller : Types.method_id;
  s_callee : Types.method_id;
}

let one_site prog =
  match Program.remote_callsites prog with
  | [ (m, s, callee, _, _) ] ->
      { s_prog = prog; s_site = s; s_caller = m.Program.mid; s_callee = callee }
  | l -> failwith (Printf.sprintf "expected exactly 1 callsite, got %d" (List.length l))

let fig8 () =
  let b = B.create () in
  let base = B.declare_class b "Base" in
  let work = B.declare_class b ~remote:true "Work" in
  let bar =
    B.declare_method b ~owner:work ~name:"Work.bar"
      ~params:[ Tobject base; Tobject base ] ~ret:Tvoid ()
  in
  B.define b bar (fun mb -> B.ret mb None);
  let foo = B.declare_method b ~name:"foo" ~params:[] ~ret:Tvoid () in
  B.define b foo (fun mb ->
      let w = B.alloc mb work in
      let bv = B.alloc mb base in
      B.rcall_ignore mb (Var w) bar [ Var bv; Var bv ];
      B.ret mb None);
  one_site (B.finish b)

(* Figure 9: an object with a reference back to itself. *)
let fig9 () =
  let b = B.create () in
  let base = B.declare_class b "Base" in
  let self_fld = B.add_field b base "self" (Tobject base) in
  let work = B.declare_class b ~remote:true "Work" in
  let bar =
    B.declare_method b ~owner:work ~name:"Work.bar" ~params:[ Tobject base ]
      ~ret:Tvoid ()
  in
  B.define b bar (fun mb -> B.ret mb None);
  let foo = B.declare_method b ~name:"foo" ~params:[] ~ret:Tvoid () in
  B.define b foo (fun mb ->
      let w = B.alloc mb work in
      let bv = B.alloc mb base in
      B.store_field mb bv self_fld (Var bv);
      B.rcall_ignore mb (Var w) bar [ Var bv ];
      B.ret mb None);
  one_site (B.finish b)

(* Figure 14: a linked list of [n] elements sent over one RMI.  The
   paper's analysis cannot distinguish it from a cyclic list. *)
let linked_list ?(elements = 100) () =
  let b = B.create () in
  let cell = B.declare_class b "LinkedList" in
  let next_fld = B.add_field b cell "next" (Tobject cell) in
  let foo_cls = B.declare_class b ~remote:true "Foo" in
  let send =
    B.declare_method b ~owner:foo_cls ~name:"Foo.send" ~params:[ Tobject cell ]
      ~ret:Tvoid ()
  in
  B.define b send (fun mb -> B.ret mb None);
  let bench = B.declare_method b ~name:"benchmark" ~params:[] ~ret:Tvoid () in
  B.define b bench (fun mb ->
      let f = B.alloc mb foo_cls in
      let head = B.fresh mb (Tobject cell) in
      B.move mb head Null;
      B.loop_up mb ~from:(Int 0) ~limit:(Int elements) (fun _ ->
          let n = B.alloc mb cell in
          B.store_field mb n next_fld (Var head);
          B.move mb head (Var n));
      B.rcall_ignore mb (Var f) send [ Var head ];
      B.ret mb None);
  one_site (B.finish b)

(* Figures 12/13: 16x16 double[][] transmission. *)
let array2d ?(n = 16) () =
  let b = B.create () in
  let foo_cls = B.declare_class b ~remote:true "ArrayBench" in
  let send =
    B.declare_method b ~owner:foo_cls ~name:"ArrayBench.send"
      ~params:[ Tarray (Tarray Tdouble) ] ~ret:Tvoid ()
  in
  B.define b send (fun mb -> B.ret mb None);
  let bench = B.declare_method b ~name:"benchmark" ~params:[] ~ret:Tvoid () in
  B.define b bench (fun mb ->
      let f = B.alloc mb foo_cls in
      let arr = B.alloc_array mb (Tarray Tdouble) (Int n) in
      B.loop_up mb ~from:(Int 0) ~limit:(Int n) (fun i ->
          let inner = B.alloc_array mb Tdouble (Int n) in
          B.store_elem mb arr (Var i) (Var inner));
      B.rcall_ignore mb (Var f) send [ Var arr ];
      B.ret mb None);
  one_site (B.finish b)

(* Figure 10: the argument never escapes foo — reusable. *)
let fig10 () =
  let b = B.create () in
  let foo_cls = B.declare_class b ~remote:true "Foo" in
  let sum = B.declare_static b "Foo.sum" Tdouble in
  let foo =
    B.declare_method b ~owner:foo_cls ~name:"Foo.foo" ~params:[ Tarray Tdouble ]
      ~ret:Tvoid ()
  in
  B.define b foo (fun mb ->
      let a = B.param mb 0 in
      let x = B.load_elem mb a (Int 0) in
      let y = B.load_elem mb a (Int 1) in
      let s = B.binop mb Instr.Add (Var x) (Var y) in
      B.store_static mb sum (Var s));
  let caller = B.declare_method b ~name:"caller" ~params:[] ~ret:Tvoid () in
  B.define b caller (fun mb ->
      let f = B.alloc mb foo_cls in
      let a = B.alloc_array mb Tdouble (Int 2) in
      B.rcall_ignore mb (Var f) foo [ Var a ];
      B.ret mb None);
  one_site (B.finish b)

(* Figure 11: the argument's [d] field is stored to a static — both the
   Data object and the Bar argument escape. *)
let fig11 () =
  let b = B.create () in
  let data = B.declare_class b "Data" in
  let bar = B.declare_class b "Bar" in
  let d_fld = B.add_field b bar "d" (Tobject data) in
  let foo_cls = B.declare_class b ~remote:true "Foo" in
  let d_static = B.declare_static b "Foo.d" (Tobject data) in
  let foo =
    B.declare_method b ~owner:foo_cls ~name:"Foo.foo" ~params:[ Tobject bar ]
      ~ret:Tvoid ()
  in
  B.define b foo (fun mb ->
      let a = B.param mb 0 in
      let dv = B.load_field mb a d_fld in
      B.store_static mb d_static (Var dv));
  let caller = B.declare_method b ~name:"caller" ~params:[] ~ret:Tvoid () in
  B.define b caller (fun mb ->
      let f = B.alloc mb foo_cls in
      let bv = B.alloc mb bar in
      let dv = B.alloc mb data in
      B.store_field mb bv d_fld (Var dv);
      B.rcall_ignore mb (Var f) foo [ Var bv ];
      B.ret mb None);
  one_site (B.finish b)

(* Figure 5: two call sites passing different derived classes. *)
type fig5 = {
  f5_prog : Program.t;
  f5_sites : Types.site list;  (* in source order *)
  f5_derived1 : Types.class_id;
  f5_derived2 : Types.class_id;
}

let fig5 () =
  let b = B.create () in
  let base = B.declare_class b "Base" in
  let derived1 = B.declare_class b ~super:base "Derived1" in
  let data_fld = B.add_field b derived1 "data" Tint in
  ignore data_fld;
  let derived2 = B.declare_class b ~super:base "Derived2" in
  let p_fld = B.add_field b derived2 "p" (Tobject derived1) in
  let work = B.declare_class b ~remote:true "Work" in
  let foo =
    B.declare_method b ~owner:work ~name:"Work.foo" ~params:[ Tobject base ]
      ~ret:Tvoid ()
  in
  B.define b foo (fun mb -> B.ret mb None);
  let go = B.declare_method b ~name:"go" ~params:[] ~ret:Tvoid () in
  B.define b go (fun mb ->
      let w = B.alloc mb work in
      let b1 = B.fresh mb (Tobject base) in
      let d1 = B.alloc mb derived1 in
      B.move mb b1 (Var d1);
      B.rcall_ignore mb (Var w) foo [ Var b1 ];
      let b2 = B.fresh mb (Tobject base) in
      let d2 = B.alloc mb derived2 in
      let d2p = B.alloc mb derived1 in
      B.store_field mb d2 p_fld (Var d2p);
      B.move mb b2 (Var d2);
      B.rcall_ignore mb (Var w) foo [ Var b2 ];
      B.ret mb None);
  let prog = B.finish b in
  let sites =
    List.map (fun (_, s, _, _, _) -> s) (Program.remote_callsites prog)
  in
  { f5_prog = prog; f5_sites = sites; f5_derived1 = derived1; f5_derived2 = derived2 }

(* A call site whose return value is used and reusable: the callee
   builds and returns a fresh object that the caller only reads. *)
let returned_value () =
  let b = B.create () in
  let page = B.declare_class b "Page" in
  let size_fld = B.add_field b page "size" Tint in
  let server = B.declare_class b ~remote:true "Server" in
  let get =
    B.declare_method b ~owner:server ~name:"Server.get" ~params:[] ~ret:(Tobject page) ()
  in
  B.define b get (fun mb ->
      let p = B.alloc mb page in
      B.store_field mb p size_fld (Int 42);
      B.ret mb (Some (Var p)));
  let caller = B.declare_method b ~name:"caller" ~params:[] ~ret:Tint () in
  B.define b caller (fun mb ->
      let s = B.alloc mb server in
      match B.rcall mb (Var s) get [] with
      | Some p ->
          let sz = B.load_field mb p size_fld in
          B.ret mb (Some (Var sz))
      | None -> assert false);
  one_site (B.finish b)

(* Deterministic QCheck wiring.  [QCheck_alcotest.to_alcotest] seeds
   from [Random.self_init] unless [QCHECK_SEED] is set, so a property
   that fails in CI is unreplayable.  Every suite routes its QCheck
   tests through [qcheck_case] instead: a fixed default seed makes runs
   reproducible, [QCHECK_SEED] still overrides it, and a failure prints
   the seed needed to replay the exact generator sequence. *)
let qcheck_seed =
  lazy
    (match Sys.getenv_opt "QCHECK_SEED" with
    | Some s -> ( try int_of_string (String.trim s) with _ -> 0xC0FFEE)
    | None -> 0xC0FFEE)

let qcheck_case test =
  let seed = Lazy.force qcheck_seed in
  let name, speed, run =
    QCheck_alcotest.to_alcotest ~rand:(Random.State.make [| seed |]) test
  in
  ( name,
    speed,
    fun args ->
      try run args
      with e ->
        Printf.eprintf "\n[qcheck] replay with QCHECK_SEED=%d\n%!" seed;
        raise e )
