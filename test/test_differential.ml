(* Differential and adversarial serializer tests.

   Differential: the three serializer families (introspective,
   class-specific/dynamic, call-site plan) must reconstruct structurally
   identical values from the same input.

   Adversarial: feeding arbitrary bytes to any deserializer must raise
   a clean protocol error (Underflow) — never crash, hang, or allocate
   absurd amounts.  This exercises the length validation on every array
   path. *)

open Rmi_serial
module Msgbuf = Rmi_wire.Msgbuf
module Metrics = Rmi_stats.Metrics
module Plan = Rmi_core.Plan

let meta =
  Class_meta.make
    [
      ("Cell", [ ("next", Jir.Types.Tobject 0) ]);
      ("Pair", [ ("a", Jir.Types.Tint); ("b", Jir.Types.Tobject 0) ]);
    ]

(* random acyclic values over the Cell/Pair world *)
let gen_value =
  let open QCheck.Gen in
  let leaf =
    oneof
      [
        return Value.Null;
        map (fun i -> Value.Int i) small_int;
        map (fun f -> Value.Double f) float;
        map (fun s -> Value.Str s) (string_size (int_bound 8));
        map
          (fun fs ->
            let a = Value.new_darr (List.length fs) in
            List.iteri (fun i f -> a.Value.d.(i) <- f) fs;
            Value.Darr a)
          (list_size (int_bound 6) float);
        map
          (fun is ->
            let a = Value.new_iarr (List.length is) in
            List.iteri (fun i x -> a.Value.ia.(i) <- x) is;
            Value.Iarr a)
          (list_size (int_bound 6) int);
      ]
  in
  fix
    (fun self depth ->
      if depth = 0 then leaf
      else
        frequency
          [
            (2, leaf);
            ( 2,
              map
                (fun next ->
                  let c = Value.new_obj ~cls:0 ~nfields:1 in
                  c.Value.fields.(0) <- next;
                  Value.Obj c)
                (self (depth - 1)) );
            ( 1,
              map2
                (fun i next ->
                  let p = Value.new_obj ~cls:1 ~nfields:2 in
                  p.Value.fields.(0) <- Value.Int i;
                  p.Value.fields.(1) <- next;
                  Value.Obj p)
                small_int
                (self (depth - 1)) );
            ( 1,
              map
                (fun elems ->
                  let a =
                    Value.new_rarr (Jir.Types.Tobject 0) (List.length elems)
                  in
                  List.iteri (fun i e -> a.Value.ra.(i) <- e) elems;
                  Value.Rarr a)
                (list_size (int_bound 4) (self (depth - 1))) );
          ])
    3

let arb_value = QCheck.make ~print:(Format.asprintf "%a" Value.pp) gen_value

let via_introspect v =
  let m = Metrics.create () in
  let w = Msgbuf.create_writer () in
  Introspect.write (Introspect.make_wctx meta m) w v;
  Introspect.read (Introspect.make_rctx meta m) (Msgbuf.reader_of_writer w)

let via_dyn v =
  let m = Metrics.create () in
  let w = Msgbuf.create_writer () in
  Codec.write_dyn (Codec.make_wctx meta m ~cycle:true) w v;
  Codec.read_dyn (Codec.make_rctx meta m ~cycle:true) (Msgbuf.reader_of_writer w)
    ~cand:Value.Null

let via_plan v =
  (* the S_dyn plan step must behave identically to the dynamic path *)
  let m = Metrics.create () in
  let w = Msgbuf.create_writer () in
  Codec.write_step (Codec.make_wctx meta m ~cycle:true) w Plan.S_dyn v;
  Codec.read_step
    (Codec.make_rctx meta m ~cycle:true)
    (Msgbuf.reader_of_writer w) Plan.S_dyn ~cand:Value.Null

(* the step plan used for compiled-vs-interpreted comparison: a
   recursive Cell chain with a dynamic escape hatch *)
let chain_step = Plan.S_ref 0
let chain_defs = [| Plan.S_obj { cls = 0; fields = [| Plan.S_ref 0 |] } |]

let prop_compiled_equals_interpreted =
  QCheck.Test.make ~name:"compiled plan = interpreted plan (bytes and value)"
    ~count:400
    QCheck.(small_nat)
    (fun len ->
      (* a pure Cell chain of random length fits the recursive plan *)
      let rec chain k =
        if k = 0 then Value.Null
        else begin
          let c = Value.new_obj ~cls:0 ~nfields:1 in
          c.Value.fields.(0) <- chain (k - 1);
          Value.Obj c
        end
      in
      let v =
        match chain (len + 1) with Value.Null -> assert false | v -> v
      in
      let m = Metrics.create () in
      let w1 = Msgbuf.create_writer () in
      Codec.write_step
        (Codec.make_wctx ~defs:chain_defs meta m ~cycle:true)
        w1 chain_step v;
      let w2 = Msgbuf.create_writer () in
      (Codec.compile_write ~defs:chain_defs chain_step)
        (Codec.make_wctx ~defs:chain_defs meta m ~cycle:true)
        w2 v;
      let same_bytes = Bytes.equal (Msgbuf.contents w1) (Msgbuf.contents w2) in
      let r1 =
        Codec.read_step
          (Codec.make_rctx ~defs:chain_defs meta m ~cycle:true)
          (Msgbuf.reader_of_writer w1) chain_step ~cand:Value.Null
      in
      let r2 =
        (Codec.compile_read ~defs:chain_defs chain_step)
          (Codec.make_rctx ~defs:chain_defs meta m ~cycle:true)
          (Msgbuf.reader_of_writer w2) ~cand:Value.Null
      in
      same_bytes && Equality.equal r1 r2 && Equality.equal v r1)

let prop_three_families_agree =
  QCheck.Test.make ~name:"introspect = dyn = plan on random graphs" ~count:400
    arb_value
    (fun v ->
      let a = via_introspect v and b = via_dyn v and c = via_plan v in
      Equality.equal v a && Equality.equal a b && Equality.equal b c)

(* --- adversarial inputs ------------------------------------------------ *)

let gen_bytes = QCheck.Gen.(map Bytes.of_string (string_size (int_bound 64)))

let arb_bytes =
  QCheck.make
    ~print:(fun b ->
      String.concat " "
        (List.map (fun c -> Printf.sprintf "%02x" (Char.code c))
           (List.of_seq (Bytes.to_seq b))))
    gen_bytes

let fuzz_dyn =
  QCheck.Test.make ~name:"dyn deserializer survives random bytes" ~count:2000
    arb_bytes
    (fun bytes ->
      let m = Metrics.create () in
      match
        Codec.read_dyn
          (Codec.make_rctx meta m ~cycle:true)
          (Msgbuf.reader_of_bytes bytes) ~cand:Value.Null
      with
      | (_ : Value.t) -> true
      | exception Msgbuf.Underflow _ -> true)

let fuzz_introspect =
  QCheck.Test.make ~name:"introspect deserializer survives random bytes"
    ~count:2000 arb_bytes
    (fun bytes ->
      let m = Metrics.create () in
      match
        Introspect.read (Introspect.make_rctx meta m) (Msgbuf.reader_of_bytes bytes)
      with
      | (_ : Value.t) -> true
      | exception Msgbuf.Underflow _ -> true)

let fuzz_plan =
  let step =
    Plan.S_obj
      { cls = 1; fields = [| Plan.S_int; Plan.S_obj_array { elem = Plan.S_double_array } |] }
  in
  QCheck.Test.make ~name:"plan deserializer survives random bytes" ~count:2000
    arb_bytes
    (fun bytes ->
      let m = Metrics.create () in
      match
        Codec.read_step
          (Codec.make_rctx meta m ~cycle:true)
          (Msgbuf.reader_of_bytes bytes) step ~cand:Value.Null
      with
      | (_ : Value.t) -> true
      | exception Msgbuf.Underflow _ -> true)

let fuzz_header =
  QCheck.Test.make ~name:"protocol header survives random bytes" ~count:2000
    arb_bytes
    (fun bytes ->
      match Rmi_wire.Protocol.read_header (Msgbuf.reader_of_bytes bytes) with
      | (_ : Rmi_wire.Protocol.header) -> true
      | exception Msgbuf.Underflow _ -> true)

let hostile_length_rejected () =
  (* a handcrafted message claiming a 2^60-element double array *)
  let w = Msgbuf.create_writer () in
  ignore (Rmi_wire.Typedesc.write_tag w Rmi_wire.Typedesc.Tag_double_array);
  Msgbuf.write_uvarint w (1 lsl 60);
  let m = Metrics.create () in
  Alcotest.(check bool) "rejected" true
    (try
       ignore
         (Codec.read_dyn
            (Codec.make_rctx meta m ~cycle:true)
            (Msgbuf.reader_of_writer w) ~cand:Value.Null);
       false
     with Msgbuf.Underflow _ -> true)

let suite =
  [
    ( "differential",
      [
        Fixtures.qcheck_case prop_three_families_agree;
        Fixtures.qcheck_case prop_compiled_equals_interpreted;
      ] );
    ( "fuzz",
      [
        Fixtures.qcheck_case fuzz_dyn;
        Fixtures.qcheck_case fuzz_introspect;
        Fixtures.qcheck_case fuzz_plan;
        Fixtures.qcheck_case fuzz_header;
        Alcotest.test_case "hostile length rejected" `Quick hostile_length_rejected;
      ] );
  ]
