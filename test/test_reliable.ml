(* The reliable transport over the deterministic fault simulator.

   The paper's runtime assumes Myrinet/GM delivery; these tests prove
   the new ack/retransmit layer gives the same RPC semantics over lossy
   links, property-style over hundreds of random fault schedules, each
   replayable from its seed. *)

open Rmi_runtime
module Value = Rmi_serial.Value
module Metrics = Rmi_stats.Metrics
module Cluster = Rmi_net.Cluster
module Fault_sim = Rmi_net.Fault_sim

let meta = Rmi_serial.Class_meta.make [ ("Box", [ ("v", Jir.Types.Tint) ]) ]
let m_double = 1

let box v =
  let b = Value.new_obj ~cls:0 ~nfields:1 in
  b.fields.(0) <- Value.Int v;
  Value.Obj b

let unbox = function
  | Some (Value.Obj o) -> (
      match o.Value.fields.(0) with
      | Value.Int v -> v
      | _ -> Alcotest.fail "bad box field")
  | _ -> Alcotest.fail "no boxed reply"

(* a synchronous 2-machine pair; machine 1 exports "double the box and
   add one" and logs how many times each logical call id executed *)
let run_batch ~transport ?sim ids =
  let metrics = Metrics.create () in
  let cluster = Cluster.create ~transport ~n:2 metrics in
  Option.iter (Cluster.set_faults cluster) sim;
  let plans = Hashtbl.create 4 in
  let n0 = Node.create (Rmi_net.Sim.pack cluster) ~id:0 ~meta ~config:Config.class_ ~plans in
  let n1 = Node.create (Rmi_net.Sim.pack cluster) ~id:1 ~meta ~config:Config.class_ ~plans in
  Node.set_pump n0 (fun () -> Node.serve_pending n1);
  Node.set_pump n1 (fun () -> Node.serve_pending n0);
  let execs : (int, int) Hashtbl.t = Hashtbl.create 16 in
  Node.export n1 ~obj:0 ~meth:m_double ~has_ret:true (fun args ->
      match args.(0) with
      | Value.Obj o -> (
          match o.Value.fields.(0) with
          | Value.Int v ->
              Hashtbl.replace execs v
                (1 + Option.value ~default:0 (Hashtbl.find_opt execs v));
              Some (box ((2 * v) + 1))
          | _ -> failwith "bad box")
      | _ -> failwith "bad arg");
  let results =
    List.map
      (fun id ->
        unbox
          (Node.call n0
             ~dest:(Remote_ref.make ~machine:1 ~obj:0)
             ~meth:m_double ~callsite:1 ~has_ret:true [| box id |]))
      ids
  in
  (results, execs, Metrics.snapshot metrics)

let ids = List.init 8 (fun i -> i + 1)
let expected = List.map (fun v -> (2 * v) + 1) ids
let reliable = Cluster.Reliable Cluster.default_params

let check_seed seed =
  let sim = Fault_sim.create ~seed ~n:2 Fault_sim.default_lossy in
  let results, execs, _ = run_batch ~transport:reliable ~sim ids in
  results = expected
  && List.for_all (fun id -> Hashtbl.find_opt execs id = Some 1) ids

(* the headline property: over 500 random fault schedules every batch
   completes with the lossless results and every remote body ran
   exactly once per logical call.  QCheck prints the failing seed. *)
let prop_fault_schedules =
  QCheck.Test.make
    ~name:"500 fault seeds: lossless results, at-most-once execution"
    ~count:500
    QCheck.(int_bound 1_000_000)
    check_seed

(* pin one seed forever so a regression in the recovery path fails
   deterministically, without waiting for the random sweep to find it *)
let fixed_seed_regression () =
  Alcotest.(check bool) "seed 1337 recovers" true (check_seed 1337)

let replay_is_deterministic () =
  let once () =
    let sim = Fault_sim.create ~seed:4242 ~n:2 Fault_sim.default_lossy in
    let results, _, snap = run_batch ~transport:reliable ~sim ids in
    (results, Fault_sim.digest sim, snap)
  in
  let r1, d1, s1 = once () in
  let r2, d2, s2 = once () in
  Alcotest.(check (list int)) "same results" r1 r2;
  Alcotest.(check string) "byte-identical fault schedule" d1 d2;
  (* the latency histogram is wall-clock data: bucket placement may
     differ between identical replays, but the sample count (one per
     settled call) may not *)
  Alcotest.(check bool) "identical metrics snapshot" true
    (Metrics.strip_timing s1 = Metrics.strip_timing s2);
  Alcotest.(check int) "same latency sample count"
    (Metrics.lat_count s1.Metrics.lat_hist)
    (Metrics.lat_count s2.Metrics.lat_hist);
  Alcotest.(check bool) "schedule actually contains faults" true
    (String.length d1 > 0)

(* differential: reliable transport, empty fault schedule — the wire
   bytes per logical call and every pre-existing counter must match the
   raw transport exactly; the reliability machinery may only show up in
   its own counters *)
let lossless_reliable_matches_raw () =
  let raw_results, _, raw = run_batch ~transport:Cluster.Raw ids in
  let rel_results, _, rel = run_batch ~transport:reliable ids in
  Alcotest.(check (list int)) "same results" raw_results rel_results;
  Alcotest.(check int) "same messages" raw.Metrics.msgs_sent rel.Metrics.msgs_sent;
  Alcotest.(check int) "same wire bytes" raw.Metrics.bytes_sent rel.Metrics.bytes_sent;
  (* the wire-path telemetry (bytes_copied, pool traffic) is also
     transport-specific: enveloping physically copies frames the raw
     path never makes *)
  Alcotest.(check bool) "all pre-existing counters identical" true
    (Metrics.strip_timing
       { rel with Metrics.retries = 0; timeouts = 0; dup_drops = 0;
                  acks_sent = 0;
                  bytes_copied = raw.Metrics.bytes_copied;
                  pool_hits = raw.Metrics.pool_hits;
                  pool_misses = raw.Metrics.pool_misses }
    = Metrics.strip_timing raw);
  Alcotest.(check int) "no spurious retransmits" 0 rel.Metrics.retries;
  Alcotest.(check int) "no spurious timeouts" 0 rel.Metrics.timeouts;
  Alcotest.(check int) "no spurious dup drops" 0 rel.Metrics.dup_drops;
  (* one ack per data frame: request + reply per call *)
  Alcotest.(check int) "one ack per data frame" rel.Metrics.msgs_sent
    rel.Metrics.acks_sent

let faulty_run_counts_recovery_work () =
  let sim = Fault_sim.create ~seed:7 ~n:2 Fault_sim.default_lossy in
  let results, _, snap = run_batch ~transport:reliable ~sim ids in
  Alcotest.(check (list int)) "recovered results" expected results;
  Alcotest.(check bool) "recovery happened and was counted" true
    (snap.Metrics.retries > 0 || snap.Metrics.dup_drops > 0);
  (* logical accounting unchanged by loss: one request + one reply per
     call, payload bytes only *)
  Alcotest.(check int) "logical messages unaffected by loss"
    (2 * List.length ids) snap.Metrics.msgs_sent

(* the reliable transport must also work when machines are real OCaml
   domains: blocked receivers wait in slices and keep their retransmit
   timers alive instead of parking on a condition variable forever *)
let parallel_mode_over_reliable () =
  let metrics = Metrics.create () in
  let fabric =
    Fabric.create ~mode:Fabric.Parallel ~n:2 ~meta
      ~config:(Config.with_reliable Config.class_)
      ~plans:(Hashtbl.create 4) ~metrics ()
  in
  for i = 0 to 1 do
    Node.export (Fabric.node fabric i) ~obj:0 ~meth:m_double ~has_ret:true
      (fun args ->
        match args.(0) with
        | Value.Obj o -> (
            match o.Value.fields.(0) with
            | Value.Int v -> Some (box ((2 * v) + 1))
            | _ -> failwith "bad box")
        | _ -> failwith "bad arg")
  done;
  Fabric.run fabric (fun fabric ->
      let caller = Fabric.node fabric 0 in
      for v = 1 to 20 do
        Alcotest.(check int)
          (Printf.sprintf "call %d" v)
          ((2 * v) + 1)
          (unbox
             (Node.call caller
                ~dest:(Remote_ref.make ~machine:1 ~obj:0)
                ~meth:m_double ~callsite:1 ~has_ret:true [| box v |]))
      done)

let suite =
  [
    ( "reliable",
      [
        Fixtures.qcheck_case prop_fault_schedules;
        Alcotest.test_case "fixed-seed regression (1337)" `Quick
          fixed_seed_regression;
        Alcotest.test_case "same seed => identical schedule and metrics" `Quick
          replay_is_deterministic;
        Alcotest.test_case "lossless reliable == raw (bytes and counters)"
          `Quick lossless_reliable_matches_raw;
        Alcotest.test_case "faulty run counts retries/dups" `Quick
          faulty_run_counts_recovery_work;
        Alcotest.test_case "parallel mode (domains) over reliable" `Quick
          parallel_mode_over_reliable;
      ] );
  ]
