(* Tiered adaptive specialization (PR 4): call sites start on the
   generic plan, are promoted to the compiled plan once hot, and are
   deoptimized — the offending position widened to the dynamic step —
   when a runtime value breaks the plan's static promise.  The RMI
   must still succeed through a deopt, the counters must record it,
   and a restarted machine must re-warm its tiers. *)

open Rmi_runtime
module Value = Rmi_serial.Value
module Codec = Rmi_serial.Codec
module Metrics = Rmi_stats.Metrics
module Plan = Rmi_core.Plan
module Fault_sim = Rmi_net.Fault_sim

let meta =
  Rmi_serial.Class_meta.make
    [ ("Pair", [ ("a", Jir.Types.Tint); ("b", Jir.Types.Tint) ]) ]

let m_swap = 1
let site = 7

let pair_step = Plan.S_obj { cls = 0; fields = [| Plan.S_int; Plan.S_int |] }

(* the compiled (AOT) plan for the swap site: argument and return are
   statically a Pair of two ints *)
let swap_plan =
  {
    Plan.callsite = site;
    defs = [||];
    args = [| pair_step |];
    ret = Some pair_step;
    cycle_args = false;
    cycle_ret = false;
    reuse_args = [| false |];
    reuse_ret = false;
    non_escaping = false;
    version = 1;
    polluted = false;
  }

let pair a b =
  let p = Value.new_obj ~cls:0 ~nfields:2 in
  p.Value.fields.(0) <- a;
  p.Value.fields.(1) <- b;
  Value.Obj p

let int_pair a b = pair (Value.Int a) (Value.Int b)

(* 2-machine sync fabric with the swap handler on machine 1 *)
let make_fabric ?(handler = fun _ -> Some (int_pair 1 2)) ~config () =
  let metrics = Metrics.create () in
  let plans = Hashtbl.create 4 in
  Hashtbl.replace plans site swap_plan;
  let fabric =
    Fabric.create ~mode:Fabric.Sync ~n:2 ~meta ~config ~plans ~metrics ()
  in
  Node.export (Fabric.node fabric 1) ~obj:0 ~meth:m_swap ~has_ret:true handler;
  (fabric, plans, metrics)

let call fabric v =
  Node.call (Fabric.node fabric 0)
    ~dest:(Remote_ref.make ~machine:1 ~obj:0)
    ~meth:m_swap ~callsite:site ~has_ret:true [| v |]

let check_pair what expect got =
  match got with
  | Some v ->
      Alcotest.(check bool) what true (Rmi_serial.Equality.equal v expect)
  | None -> Alcotest.failf "%s: no reply" what

(* --- promotion --- *)

let promotes_at_hot_threshold () =
  let config = Config.with_adaptive ~hot_threshold:4 Config.site_reuse_cycle in
  let fabric, _, metrics = make_fabric ~config () in
  let tr = Trace.create () in
  Node.set_trace (Fabric.node fabric 0) tr;
  for i = 1 to 6 do
    check_pair "swap reply" (int_pair 1 2) (call fabric (int_pair i i))
  done;
  let s = Metrics.snapshot metrics in
  Alcotest.(check int) "one promotion" 1 s.Metrics.tier_promotions;
  Alcotest.(check int) "no deopts" 0 s.Metrics.tier_deopts;
  Alcotest.(check (list (pair int int))) "site invocation counts"
    [ (site, 6) ] s.Metrics.site_calls;
  let promote_calls =
    List.filter_map
      (fun (e : Trace.entry) ->
        match e.Trace.event with
        | Trace.Promote { callsite; calls; version; _ } ->
            Some (callsite, calls, version)
        | _ -> None)
      (Trace.entries tr)
  in
  Alcotest.(check (list (triple int int int)))
    "promoted at the threshold, to the compiled plan"
    [ (site, 4, 1) ] promote_calls

let aot_never_promotes () =
  (* the paper presets stay on the static model: plans from call one,
     no tier activity in the counters *)
  let fabric, _, metrics = make_fabric ~config:Config.site_reuse_cycle () in
  for i = 1 to 6 do
    check_pair "swap reply" (int_pair 1 2) (call fabric (int_pair i i))
  done;
  let s = Metrics.snapshot metrics in
  Alcotest.(check int) "no promotions" 0 s.Metrics.tier_promotions;
  Alcotest.(check int) "no deopts" 0 s.Metrics.tier_deopts;
  Alcotest.(check (list (pair int int))) "no site counting" [] s.Metrics.site_calls

let adaptive_spends_generic_bytes_until_hot () =
  (* per-call wire cost: generic until the threshold, AOT after *)
  let cost config calls =
    let fabric, _, metrics = make_fabric ~config () in
    let per_call = ref [] in
    let last = ref 0 in
    for i = 1 to calls do
      ignore (call fabric (int_pair i i));
      let b = (Metrics.snapshot metrics).Metrics.bytes_sent in
      per_call := (b - !last) :: !per_call;
      last := b
    done;
    List.rev !per_call
  in
  let adaptive =
    cost (Config.with_adaptive ~hot_threshold:3 Config.site_reuse_cycle) 6
  in
  let aot = cost Config.site_reuse_cycle 6 in
  let generic = cost Config.class_ 6 in
  List.iteri
    (fun i (a, (g, o)) ->
      if i < 2 then
        Alcotest.(check int)
          (Printf.sprintf "call %d costs generic bytes" (i + 1))
          g a
      else
        Alcotest.(check int)
          (Printf.sprintf "call %d costs aot bytes" (i + 1))
          o a)
    (List.combine adaptive (List.combine generic aot))

(* --- deoptimization --- *)

let lying_plan_arg_deopt_still_succeeds () =
  (* the plan promises Pair{int;int} but the caller ships a Double in
     one field: the specialized encoder hits Type_confusion, the site
     deoptimizes (arg0 -> dyn) and the very same call succeeds *)
  let config = Config.with_adaptive ~hot_threshold:1 Config.site_reuse_cycle in
  let fabric, plans, metrics = make_fabric ~config () in
  let lying = pair (Value.Double 0.5) (Value.Int 2) in
  check_pair "deoptimized call succeeds" (int_pair 1 2) (call fabric lying);
  let s = Metrics.snapshot metrics in
  Alcotest.(check int) "one deopt" 1 s.Metrics.tier_deopts;
  Alcotest.(check int) "one promotion" 1 s.Metrics.tier_promotions;
  let current = Hashtbl.find plans site in
  Alcotest.(check bool) "site marked polluted" true current.Plan.polluted;
  Alcotest.(check int) "version bumped" 2 current.Plan.version;
  Alcotest.(check bool) "arg widened to dyn" true
    (current.Plan.args.(0) = Plan.S_dyn);
  Alcotest.(check bool) "ret untouched" true
    (current.Plan.ret = Some pair_step);
  (* subsequent calls — lying or honest — run on the widened plan with
     no further deopts *)
  check_pair "second lying call" (int_pair 1 2) (call fabric lying);
  check_pair "honest call" (int_pair 1 2) (call fabric (int_pair 3 4));
  Alcotest.(check int) "still one deopt" 1
    (Metrics.snapshot metrics).Metrics.tier_deopts

let lying_plan_ret_deopt_still_succeeds () =
  (* the handler returns a shape the plan's return step cannot encode:
     the server deoptimizes the return position and replies with the
     widened encoding, which the caller adopts *)
  let config = Config.with_adaptive ~hot_threshold:1 Config.site_reuse_cycle in
  let odd = pair (Value.Str "boom") (Value.Int 9) in
  let fabric, plans, metrics =
    make_fabric ~handler:(fun _ -> Some odd) ~config ()
  in
  check_pair "ret-deoptimized call succeeds" odd (call fabric (int_pair 1 2));
  let s = Metrics.snapshot metrics in
  Alcotest.(check int) "one deopt" 1 s.Metrics.tier_deopts;
  let current = Hashtbl.find plans site in
  Alcotest.(check bool) "site marked polluted" true current.Plan.polluted;
  Alcotest.(check bool) "ret widened to dyn" true
    (current.Plan.ret = Some Plan.S_dyn);
  Alcotest.(check bool) "args untouched" true
    (current.Plan.args.(0) = pair_step);
  check_pair "subsequent call" odd (call fabric (int_pair 3 4));
  Alcotest.(check int) "still one deopt" 1
    (Metrics.snapshot metrics).Metrics.tier_deopts

let aot_lying_plan_raises_cleanly () =
  (* regression: without the adaptive tier there is no deopt path — a
     wrong plan must surface as Codec.Type_confusion at the call site,
     with the counters and the site's plan left untouched *)
  let fabric, plans, metrics = make_fabric ~config:Config.site_reuse_cycle () in
  let lying = pair (Value.Double 0.5) (Value.Int 2) in
  (match call fabric lying with
  | exception Codec.Type_confusion _ -> ()
  | _ -> Alcotest.fail "expected Type_confusion");
  let s = Metrics.snapshot metrics in
  Alcotest.(check int) "no deopt recorded" 0 s.Metrics.tier_deopts;
  Alcotest.(check bool) "plan untouched" false
    (Hashtbl.find plans site).Plan.polluted;
  (* the node (and its writer contexts) stay usable *)
  check_pair "fabric still works" (int_pair 1 2) (call fabric (int_pair 5 6))

(* --- equivalence and convergence --- *)

let tiers_compare_converges () =
  let r = Rmi_harness.Experiment.tiers_compare ~calls:24 ~window:6
      ~hot_threshold:6 ()
  in
  Alcotest.(check int) "three variants" 3
    (List.length r.Rmi_harness.Experiment.t_rows);
  Alcotest.(check bool) "replies byte-identical" true
    r.Rmi_harness.Experiment.t_equal;
  Alcotest.(check bool) "adaptive converges to aot" true
    r.Rmi_harness.Experiment.t_converged

(* --- crash: tiers re-warm --- *)

let restart_rewarms_tiers () =
  (* machine 1 promotes its swap site, crashes, restarts — its tier
     state died with it, so the site re-warms and promotes again *)
  let metrics = Metrics.create () in
  let plans = Hashtbl.create 4 in
  Hashtbl.replace plans site swap_plan;
  let config =
    Config.with_adaptive ~hot_threshold:2
      (Config.with_failover
         { Config.default_failover with Config.max_call_retries = 4 }
         (Config.with_reliable Config.site_reuse_cycle))
  in
  let sim = Fault_sim.create ~seed:11 ~n:2 Fault_sim.lossless in
  let fabric =
    Fabric.create ~mode:Fabric.Sync ~faults:sim ~n:2 ~meta ~config ~plans
      ~metrics ()
  in
  (* swap exported on machine 0: machine 1 is the caller whose tier
     state we crash away *)
  Node.export (Fabric.node fabric 0) ~obj:0 ~meth:m_swap ~has_ret:true
    (fun _ -> Some (int_pair 1 2));
  (* echo exported on machine 1: traffic to drive the frame clock
     through the outage (its callsite has no compiled plan, so it never
     promotes) *)
  let m_echo = 2 in
  Node.export (Fabric.node fabric 1) ~obj:1 ~meth:m_echo ~has_ret:true
    (fun args -> Some args.(0));
  let swap_from_m1 () =
    Node.call (Fabric.node fabric 1)
      ~dest:(Remote_ref.make ~machine:0 ~obj:0)
      ~meth:m_swap ~callsite:site ~has_ret:true [| int_pair 3 4 |]
  in
  let echo_from_m0 v =
    Node.call (Fabric.node fabric 0)
      ~dest:(Remote_ref.make ~machine:1 ~obj:1)
      ~meth:m_echo ~callsite:99 ~has_ret:true [| Value.Int v |]
  in
  for _ = 1 to 3 do
    check_pair "pre-crash swap" (int_pair 1 2) (swap_from_m1 ())
  done;
  Alcotest.(check int) "promoted before the crash" 1
    (Metrics.snapshot metrics).Metrics.tier_promotions;
  (* kill machine 1 at the next frame, back after a short outage *)
  Fault_sim.set_crash_plan sim
    [
      {
        Fault_sim.victim = 1;
        crash_at = Fault_sim.frame_clock sim + 1;
        restart_after = Some 4;
        durability = Fault_sim.Durable;
      };
    ];
  for v = 1 to 8 do
    match echo_from_m0 v with
    | Some (Value.Int v') -> Alcotest.(check int) "echo rides through" v v'
    | Some _ | None -> Alcotest.fail "echo lost"
  done;
  let s = Metrics.snapshot metrics in
  Alcotest.(check int) "crash fired" 1 s.Metrics.crashes;
  Alcotest.(check int) "restart fired" 1 s.Metrics.restarts;
  (* the restarted caller starts cold and promotes a second time *)
  for _ = 1 to 3 do
    check_pair "post-restart swap" (int_pair 1 2) (swap_from_m1 ())
  done;
  Alcotest.(check int) "re-promoted after restart" 2
    (Metrics.snapshot metrics).Metrics.tier_promotions

let suite =
  [
    ( "tiers.promotion",
      [
        Alcotest.test_case "promotes at the hot threshold" `Quick
          promotes_at_hot_threshold;
        Alcotest.test_case "aot preset never promotes" `Quick aot_never_promotes;
        Alcotest.test_case "generic bytes until hot, aot bytes after" `Quick
          adaptive_spends_generic_bytes_until_hot;
      ] );
    ( "tiers.deopt",
      [
        Alcotest.test_case "lying plan: argument deopt" `Quick
          lying_plan_arg_deopt_still_succeeds;
        Alcotest.test_case "lying plan: return deopt" `Quick
          lying_plan_ret_deopt_still_succeeds;
        Alcotest.test_case "aot lying plan raises cleanly" `Quick
          aot_lying_plan_raises_cleanly;
      ] );
    ( "tiers.equivalence",
      [
        Alcotest.test_case "tiers comparison converges byte-identically" `Quick
          tiers_compare_converges;
      ] );
    ( "tiers.crash",
      [
        Alcotest.test_case "restart re-warms the tiers" `Quick
          restart_rewarms_tiers;
      ] );
  ]
