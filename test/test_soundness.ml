(* Soundness of the heap analysis, checked by execution.

   A generator produces random well-typed JIR programs over a fixed
   class universe (A{b:B}, B{a:A, x:int}, remote R with three methods).
   Each program is (1) interpreted — observing the concrete heap
   reachable from the statics — and (2) analyzed.  Soundness: every
   concrete points-to edge must be predicted by the heap graph.
   Because analysis nodes are allocation numbers whose [phys] component
   is the allocation site, the check is

     runtime object at site sx, flat field i, points to object at sy
     ==> exists nodes n1, n2 with phys(n1)=sx, phys(n2)=sy and an
         analysis edge n1 -Field i-> n2

   and, for statics, every runtime object in a static must have a node
   with its site in the static's points-to set. *)

open Jir
module B = Builder
module HA = Rmi_core.Heap_analysis
module HG = Rmi_core.Heap_graph
module Int_set = HA.Int_set

(* --- the generated-program description, independent of the builder --- *)

type gstmt =
  | G_alloc_a        (* push fresh A var *)
  | G_alloc_b        (* push fresh B var *)
  | G_alloc_arr      (* push fresh A[4] var *)
  | G_store_ab       (* some A's b field <- some B *)
  | G_store_ba       (* some B's a field <- some A *)
  | G_load_ab        (* push A.b as a B var *)
  | G_load_ba        (* push B.a as an A var *)
  | G_arr_store      (* some arr[k] <- some A *)
  | G_arr_load       (* push arr[k] as an A var *)
  | G_static_a       (* static slot <- some A *)
  | G_static_arr     (* array static <- some arr *)
  | G_rcall_m1       (* remote void m1(A) *)
  | G_rcall_m2       (* A <- remote m2(A): echoes its argument *)
  | G_rcall_m3       (* B <- remote m3(B): returns the arg's rewired copy *)
  | G_rcall_m4       (* remote void m4(A[]): reads elements *)
  | G_branch of gstmt list * gstmt list  (* if with both arms *)

let rec pp_gstmt ppf = function
  | G_alloc_a -> Format.pp_print_string ppf "newA"
  | G_alloc_b -> Format.pp_print_string ppf "newB"
  | G_alloc_arr -> Format.pp_print_string ppf "newA[]"
  | G_store_ab -> Format.pp_print_string ppf "a.b=b"
  | G_store_ba -> Format.pp_print_string ppf "b.a=a"
  | G_load_ab -> Format.pp_print_string ppf "t=a.b"
  | G_load_ba -> Format.pp_print_string ppf "t=b.a"
  | G_arr_store -> Format.pp_print_string ppf "arr[k]=a"
  | G_arr_load -> Format.pp_print_string ppf "t=arr[k]"
  | G_static_a -> Format.pp_print_string ppf "S=a"
  | G_static_arr -> Format.pp_print_string ppf "SA=arr"
  | G_rcall_m1 -> Format.pp_print_string ppf "r.m1(a)"
  | G_rcall_m2 -> Format.pp_print_string ppf "a'=r.m2(a)"
  | G_rcall_m3 -> Format.pp_print_string ppf "b'=r.m3(b)"
  | G_rcall_m4 -> Format.pp_print_string ppf "r.m4(arr)"
  | G_branch (l, r) ->
      Format.fprintf ppf "if{%a}{%a}"
        (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ";") pp_gstmt) l
        (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ";") pp_gstmt) r

let gen_stmt =
  let open QCheck.Gen in
  fix
    (fun self depth ->
      let leaf =
        frequencyl
          [
            (3, G_alloc_a); (3, G_alloc_b); (2, G_alloc_arr); (3, G_store_ab);
            (3, G_store_ba); (2, G_load_ab); (2, G_load_ba); (2, G_arr_store);
            (2, G_arr_load); (2, G_static_a); (1, G_static_arr);
            (1, G_rcall_m1); (2, G_rcall_m2); (2, G_rcall_m3); (1, G_rcall_m4);
          ]
      in
      if depth = 0 then leaf
      else
        frequency
          [
            (6, leaf);
            ( 1,
              map2
                (fun l r -> G_branch (l, r))
                (list_size (int_bound 3) (self (depth - 1)))
                (list_size (int_bound 3) (self (depth - 1))) );
          ])
    2

let gen_program = QCheck.Gen.(list_size (int_range 1 14) gen_stmt)

let arb_program =
  QCheck.make
    ~print:(fun p ->
      Format.asprintf "%a"
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.pp_print_string ppf "; ")
           pp_gstmt)
        p)
    gen_program

(* --- build the JIR program from a description --- *)

type built = {
  prog : Program.t;
  main : Types.method_id;
  statics : Types.static_id array;  (* A-typed static slots *)
  arr_static : Types.static_id;  (* an A[]-typed root *)
}

let build (stmts : gstmt list) : built =
  let b = B.create () in
  let cls_a = B.declare_class b "A" in
  let cls_b = B.declare_class b "B" in
  let fld_ab = B.add_field b cls_a "b" (Tobject cls_b) in
  let fld_ba = B.add_field b cls_b "a" (Tobject cls_a) in
  let fld_bx = B.add_field b cls_b "x" Tint in
  ignore fld_bx;
  let remote = B.declare_class b ~remote:true "R" in
  let statics = Array.init 3 (fun i -> B.declare_static b (Printf.sprintf "S%d" i) (Tobject cls_a)) in
  let arr_static = B.declare_static b "SA" (Tarray (Tobject cls_a)) in
  let m1 =
    B.declare_method b ~owner:remote ~name:"R.m1" ~params:[ Tobject cls_a ]
      ~ret:Tvoid ()
  in
  B.define b m1 (fun mb ->
      (* reads the argument graph *)
      let p = B.param mb 0 in
      let t = B.load_field mb p fld_ab in
      ignore t;
      B.ret mb None);
  let m2 =
    B.declare_method b ~owner:remote ~name:"R.m2" ~params:[ Tobject cls_a ]
      ~ret:(Tobject cls_a) ()
  in
  B.define b m2 (fun mb -> B.ret mb (Some (Var (B.param mb 0))));
  let m3 =
    B.declare_method b ~owner:remote ~name:"R.m3" ~params:[ Tobject cls_b ]
      ~ret:(Tobject cls_b) ()
  in
  B.define b m3 (fun mb ->
      (* allocate a fresh B, rewire it to the argument's a field *)
      let p = B.param mb 0 in
      let fresh = B.alloc mb cls_b in
      let a = B.load_field mb p fld_ba in
      B.store_field mb fresh fld_ba (Var a);
      B.ret mb (Some (Var fresh)));
  let m4 =
    B.declare_method b ~owner:remote ~name:"R.m4"
      ~params:[ Tarray (Tobject cls_a) ] ~ret:Tvoid ()
  in
  B.define b m4 (fun mb ->
      let p = B.param mb 0 in
      let t = B.load_elem mb p (Int 0) in
      ignore t;
      B.ret mb None);
  let main = B.declare_method b ~name:"main" ~params:[ Tbool ] ~ret:Tvoid () in
  B.define b main (fun mb ->
      let r = B.alloc mb remote in
      (* var pools; seeded so every statement has operands *)
      let a_pool = ref [] and b_pool = ref [] and arr_pool = ref [] in
      let seed_a = B.alloc mb cls_a and seed_b = B.alloc mb cls_b in
      let seed_arr = B.alloc_array mb (Tobject cls_a) (Int 4) in
      a_pool := [ seed_a ];
      b_pool := [ seed_b ];
      arr_pool := [ seed_arr ];
      let pick pool k = List.nth !pool (k mod List.length !pool) in
      let counter = ref 0 in
      let next () =
        incr counter;
        !counter
      in
      let rec emit stmt =
        let k = next () in
        match stmt with
        | G_alloc_a -> a_pool := B.alloc mb cls_a :: !a_pool
        | G_alloc_b -> b_pool := B.alloc mb cls_b :: !b_pool
        | G_alloc_arr ->
            arr_pool := B.alloc_array mb (Tobject cls_a) (Int 4) :: !arr_pool
        | G_store_ab -> B.store_field mb (pick a_pool k) fld_ab (Var (pick b_pool (k * 7)))
        | G_store_ba -> B.store_field mb (pick b_pool k) fld_ba (Var (pick a_pool (k * 5)))
        | G_load_ab ->
            let t = B.load_field mb (pick a_pool k) fld_ab in
            (* guard against null loads at runtime: only pool it if the
               statement later stores through it; to stay simple we move
               a known-good B over it when null.  Cheap trick: store the
               loaded value into a fresh var but keep the seed too. *)
            b_pool := t :: !b_pool
        | G_load_ba ->
            let t = B.load_field mb (pick b_pool k) fld_ba in
            a_pool := t :: !a_pool
        | G_arr_store ->
            B.store_elem mb (pick arr_pool k) (Int (k mod 4))
              (Var (pick a_pool (k * 3)))
        | G_arr_load ->
            let t = B.load_elem mb (pick arr_pool k) (Int (k mod 4)) in
            a_pool := t :: !a_pool
        | G_static_a -> B.store_static mb statics.(k mod 3) (Var (pick a_pool k))
        | G_static_arr -> B.store_static mb arr_static (Var (pick arr_pool k))
        | G_rcall_m1 -> B.rcall_ignore mb (Var r) m1 [ Var (pick a_pool k) ]
        | G_rcall_m2 -> (
            match B.rcall mb (Var r) m2 [ Var (pick a_pool k) ] with
            | Some res -> a_pool := res :: !a_pool
            | None -> assert false)
        | G_rcall_m3 -> (
            match B.rcall mb (Var r) m3 [ Var (pick b_pool k) ] with
            | Some res -> b_pool := res :: !b_pool
            | None -> assert false)
        | G_rcall_m4 -> B.rcall_ignore mb (Var r) m4 [ Var (pick arr_pool k) ]
        | G_branch (l, rgt) ->
            (* both arms share the outer pools; pool changes made inside
               an arm stay local to keep variables defined on all paths *)
            let snapshot_a = !a_pool and snapshot_b = !b_pool in
            B.if_ mb
              (Var (B.param mb 0))
              (fun () ->
                List.iter emit l;
                a_pool := snapshot_a;
                b_pool := snapshot_b)
              (fun () ->
                List.iter emit rgt;
                a_pool := snapshot_a;
                b_pool := snapshot_b)
      in
      List.iter emit stmts;
      (* make the heap observable: root every pool var in the statics *)
      List.iteri
        (fun i v -> if i < 3 then B.store_static mb statics.(i) (Var v))
        !a_pool;
      B.store_static mb arr_static (Var (List.hd !arr_pool));
      B.ret mb None);
  { prog = B.finish b; main; statics; arr_static }

(* problem: loads may produce null at runtime; the interpreter only
   dereferences on *use*, and our uses (stores through picked vars,
   call args) tolerate null arguments but not null receivers.  Run in a
   mode that treats null-receiver steps as skips by catching the
   runtime error: a program that faults mid-way still leaves a valid
   partial heap in the statics, which is exactly what we check. *)

let run_tolerant prog main =
  let st = Interp.create ~step_limit:200_000 prog in
  (try ignore (Interp.run st main [ Interp.Vbool true ]) with
  | Interp.Runtime_error _ -> ()
  | Interp.Step_limit_exceeded -> ());
  st

(* collect concrete edges + static roots; [i] is the flat field index
   for object fields and [-1] for array-element edges *)
let concrete_edges st (built : built) =
  let edges = ref [] in
  let static_sites = ref [] in
  let seen = Hashtbl.create 64 in
  let rec walk v =
    match v with
    | Interp.Vobj o ->
        if not (Hashtbl.mem seen o.Interp.oid) then begin
          Hashtbl.add seen o.Interp.oid ();
          Array.iteri
            (fun i f ->
              (match f with
              | Interp.Vobj o' ->
                  edges := (o.Interp.osite, i, o'.Interp.osite) :: !edges
              | _ -> ());
              walk f)
            o.Interp.ofields
        end
    | Interp.Varr a ->
        if not (Hashtbl.mem seen a.Interp.aid) then begin
          Hashtbl.add seen a.Interp.aid ();
          Array.iter
            (fun f ->
              (match f with
              | Interp.Vobj o' ->
                  edges := (a.Interp.asite, -1, o'.Interp.osite) :: !edges
              | _ -> ());
              walk f)
            a.Interp.adata
        end
    | _ -> ()
  in
  Array.iteri
    (fun i _ ->
      match Interp.read_static st i with
      | Interp.Vobj o as v ->
          static_sites := (i, o.Interp.osite) :: !static_sites;
          walk v
      | Interp.Varr a as v ->
          static_sites := (i, a.Interp.asite) :: !static_sites;
          walk v
      | v -> walk v)
    built.prog.Program.statics;
  (!edges, !static_sites)

let analysis_predicts prog (edges, static_sites) =
  let r = HA.analyze prog in
  let g = HA.graph r in
  let nodes_with_phys s =
    let acc = ref [] in
    for n = 0 to HG.num_nodes g - 1 do
      if (HG.node g n).HG.phys = s then acc := n :: !acc
    done;
    !acc
  in
  let edge_ok (sx, i, sy) =
    let key = if i < 0 then HG.Elem else HG.Field i in
    List.exists
      (fun n1 ->
        let tgts = HG.targets g n1 key in
        Int_set.exists (fun n2 -> (HG.node g n2).HG.phys = sy) tgts)
      (nodes_with_phys sx)
  in
  let static_ok (sid, site) =
    Int_set.exists
      (fun n -> (HG.node g n).HG.phys = site)
      (HA.static_set r sid)
  in
  List.for_all edge_ok edges && List.for_all static_ok static_sites

let prop_heap_analysis_sound =
  QCheck.Test.make ~name:"heap analysis over-approximates the concrete heap"
    ~count:200 arb_program
    (fun stmts ->
      let built = build stmts in
      (match Typecheck.check built.prog with
      | [] -> ()
      | errs ->
          QCheck.Test.fail_reportf "generator produced ill-typed program: %s"
            (String.concat "; "
               (List.map (fun e -> Format.asprintf "%a" Typecheck.pp_error e) errs)));
      let st = run_tolerant built.prog built.main in
      let concrete = concrete_edges st built in
      Rmi_ssa.Ssa.convert built.prog;
      analysis_predicts built.prog concrete)

let prop_ssa_preserves_semantics =
  (* run the same random program before and after SSA conversion and
     compare the static roots structurally *)
  QCheck.Test.make ~name:"SSA conversion preserves observable heaps" ~count:100
    arb_program
    (fun stmts ->
      let b1 = build stmts in
      let st1 = run_tolerant b1.prog b1.main in
      let b2 = build stmts in
      Rmi_ssa.Ssa.convert b2.prog;
      let st2 = run_tolerant b2.prog b2.main in
      let ok = ref true in
      Array.iteri
        (fun i _ ->
          if
            not
              (Interp.value_equal (Interp.read_static st1 i)
                 (Interp.read_static st2 i))
          then ok := false)
        b1.prog.Program.statics;
      !ok)

let prop_typecheck_random_programs =
  QCheck.Test.make ~name:"generated programs always typecheck" ~count:200
    arb_program
    (fun stmts -> Typecheck.check (build stmts).prog = [])

let suite =
  [
    ( "soundness",
      [
        Fixtures.qcheck_case prop_typecheck_random_programs;
        Fixtures.qcheck_case prop_heap_analysis_sound;
        Fixtures.qcheck_case prop_ssa_preserves_semantics;
      ] );
  ]
