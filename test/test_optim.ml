(* Scalar SSA optimization tests: folding, copy propagation, branch
   pruning, DCE — and behaviour preservation on random programs. *)

open Jir
module B = Builder
module Optim = Rmi_ssa.Optim

let build_and_ssa f =
  let b = B.create () in
  let mid = f b in
  let prog = B.finish b in
  Typecheck.check_exn prog;
  Rmi_ssa.Ssa.convert prog;
  (prog, mid)

let count_instrs (m : Program.method_decl) =
  Array.fold_left
    (fun acc (blk : Instr.block) -> acc + List.length blk.Instr.body)
    0 m.Program.blocks

let folds_constants () =
  let prog, f =
    build_and_ssa (fun b ->
        let f = B.declare_method b ~name:"f" ~params:[] ~ret:Tint () in
        B.define b f (fun mb ->
            let a = B.binop mb Instr.Mul (Int 3) (Int 4) in
            let s = B.binop mb Instr.Add (Int 2) (Var a) in
            let n = B.unop mb Instr.Neg (Var s) in
            let r = B.unop mb Instr.Neg (Var n) in
            B.ret mb (Some (Var r)));
        f)
  in
  let m = Program.method_decl prog f in
  let rewrites = Optim.simplify_method m in
  Alcotest.(check bool) "rewrote something" true (rewrites > 0);
  Alcotest.(check int) "all instructions folded away" 0 (count_instrs m);
  (match m.Program.blocks.(0).Instr.term with
  | Instr.Ret (Some (Instr.Int 14)) -> ()
  | t -> Alcotest.failf "expected ret 14, got %a" Pretty.pp_terminator t);
  (* still valid and still computes the same thing *)
  Typecheck.check_exn prog;
  match Interp.run (Interp.create prog) f [] with
  | Interp.Vint 14 -> ()
  | v -> Alcotest.failf "wrong result %a" Interp.pp_value v

let prunes_constant_branches () =
  let prog, f =
    build_and_ssa (fun b ->
        let f = B.declare_method b ~name:"f" ~params:[] ~ret:Tint () in
        B.define b f (fun mb ->
            let result = B.fresh mb Tint in
            B.if_ mb (Bool true)
              (fun () -> B.move mb result (Int 1))
              (fun () -> B.move mb result (Int 2));
            B.ret mb (Some (Var result)));
        f)
  in
  let m = Program.method_decl prog f in
  ignore (Optim.simplify_method m);
  (* the dead branch is disconnected: no block still branches on a
     constant, and the function still returns 1 *)
  Array.iter
    (fun (blk : Instr.block) ->
      match blk.Instr.term with
      | Instr.Br { cond = Instr.Bool _; _ } -> Alcotest.fail "constant branch left"
      | _ -> ())
    m.Program.blocks;
  Typecheck.check_exn prog;
  match Interp.run (Interp.create prog) f [] with
  | Interp.Vint 1 -> ()
  | v -> Alcotest.failf "wrong result %a" Interp.pp_value v

let removes_dead_allocations () =
  let prog, f =
    build_and_ssa (fun b ->
        let cls = B.declare_class b "C" in
        let f = B.declare_method b ~name:"f" ~params:[] ~ret:Tint () in
        B.define b f (fun mb ->
            let dead_obj = B.alloc mb cls in
            let dead_arr = B.alloc_array mb Tint (Int 8) in
            ignore dead_obj;
            ignore dead_arr;
            B.ret mb (Some (Int 7)));
        f)
  in
  let m = Program.method_decl prog f in
  ignore (Optim.simplify_method m);
  Alcotest.(check int) "dead allocations removed" 0 (count_instrs m)

let keeps_faulting_code () =
  (* division by a zero constant and a possibly-negative array length
     must survive *)
  let prog, f =
    build_and_ssa (fun b ->
        let f = B.declare_method b ~name:"f" ~params:[ Tint ] ~ret:Tint () in
        B.define b f (fun mb ->
            let d = B.binop mb Instr.Div (Int 1) (Int 0) in
            ignore d;
            let arr = B.alloc_array mb Tint (Var (B.param mb 0)) in
            ignore arr;
            B.ret mb (Some (Int 0)));
        f)
  in
  let m = Program.method_decl prog f in
  ignore (Optim.simplify_method m);
  Alcotest.(check int) "faulting instrs kept" 2 (count_instrs m);
  (* and they still fault *)
  Alcotest.(check bool) "still faults" true
    (try
       ignore (Interp.run (Interp.create prog) f [ Interp.Vint 1 ]);
       false
     with Interp.Runtime_error _ -> true)

let copy_propagates_through_phis () =
  let prog, f =
    build_and_ssa (fun b ->
        let f = B.declare_method b ~name:"f" ~params:[ Tbool ] ~ret:Tint () in
        B.define b f (fun mb ->
            let x = B.fresh mb Tint in
            (* both branches assign the same constant: the phi folds *)
            B.if_ mb
              (Var (B.param mb 0))
              (fun () -> B.move mb x (Int 9))
              (fun () -> B.move mb x (Int 9));
            B.ret mb (Some (Var x)));
        f)
  in
  let m = Program.method_decl prog f in
  ignore (Optim.simplify_method m);
  (match m.Program.blocks.(3).Instr.term with
  | Instr.Ret (Some (Instr.Int 9)) -> ()
  | _ -> Alcotest.fail "phi of identical constants not folded");
  Typecheck.check_exn prog

let rejects_non_ssa () =
  let b = B.create () in
  let f = B.declare_method b ~name:"f" ~params:[] ~ret:Tint () in
  B.define b f (fun mb ->
      let x = B.fresh mb Tint in
      B.move mb x (Int 1);
      B.move mb x (Int 2);
      B.ret mb (Some (Var x)));
  let prog = B.finish b in
  Alcotest.(check bool) "raises" true
    (try
       ignore (Optim.simplify_method (Program.method_decl prog f));
       false
     with Invalid_argument _ -> true)

(* behaviour preservation on the random-program generator *)
let prop_simplify_preserves_behaviour =
  QCheck.Test.make ~name:"simplify preserves observable behaviour" ~count:100
    Test_soundness.arb_program
    (fun stmts ->
      let run simplified =
        let built = Test_soundness.build stmts in
        Rmi_ssa.Ssa.convert built.Test_soundness.prog;
        if simplified then ignore (Optim.simplify built.Test_soundness.prog);
        (match Typecheck.check built.Test_soundness.prog with
        | [] -> ()
        | errs ->
            QCheck.Test.fail_reportf "simplified program ill-typed: %s"
              (String.concat "; "
                 (List.map (fun e -> Format.asprintf "%a" Typecheck.pp_error e) errs)));
        let st = Interp.create ~step_limit:200_000 built.Test_soundness.prog in
        let fault =
          try
            ignore (Interp.run st built.Test_soundness.main [ Interp.Vbool true ]);
            false
          with Interp.Runtime_error _ | Interp.Step_limit_exceeded -> true
        in
        (built, st, fault)
      in
      let b1, st1, fault1 = run false in
      let b2, st2, fault2 = run true in
      ignore b2;
      fault1 = fault2
      && (fault1
         || Array.for_all
              (fun i ->
                Interp.value_equal (Interp.read_static st1 i)
                  (Interp.read_static st2 i))
              (Array.init (Array.length b1.Test_soundness.prog.Program.statics) Fun.id))
      )

let analyses_agree_after_simplify () =
  (* the optimizer's verdicts for the array benchmark are unchanged by
     the cleanup pass *)
  let fx = Fixtures.array2d () in
  let opt = Rmi_core.Optimizer.run ~simplify:true fx.s_prog in
  match opt.Rmi_core.Optimizer.decisions with
  | [ d ] ->
      Alcotest.(check bool) "acyclic" true d.Rmi_core.Optimizer.args_acyclic;
      Alcotest.(check bool) "reusable" true
        (Rmi_core.Escape_analysis.is_reusable d.Rmi_core.Optimizer.arg_escape.(0));
      (match d.Rmi_core.Optimizer.plan.Rmi_core.Plan.args with
      | [| Rmi_core.Plan.S_flat_array { felem = Rmi_core.Plan.F_darr } |] -> ()
      | _ -> Alcotest.fail "plan changed")
  | _ -> Alcotest.fail "expected one decision"

let suite =
  [
    ( "optim.scalar",
      [
        Alcotest.test_case "constant folding" `Quick folds_constants;
        Alcotest.test_case "constant branch pruning" `Quick prunes_constant_branches;
        Alcotest.test_case "dead allocation removal" `Quick removes_dead_allocations;
        Alcotest.test_case "faulting code kept" `Quick keeps_faulting_code;
        Alcotest.test_case "phi of identical constants" `Quick
          copy_propagates_through_phis;
        Alcotest.test_case "rejects non-SSA" `Quick rejects_non_ssa;
        Alcotest.test_case "analyses unchanged" `Quick analyses_agree_after_simplify;
        Fixtures.qcheck_case prop_simplify_preserves_behaviour;
      ] );
  ]
