(* Front-end tests: lexer, parser, lowering, and full-pipeline runs in
   which the paper's figure snippets are written as source text,
   compiled, interpreted, and fed to the optimizer. *)

module L = Jfront.Lexer
module P = Jfront.Parser
module Lower = Jfront.Lower

let compile = Lower.compile

(* --- lexer --- *)

let lexes_tokens () =
  let toks = L.tokenize "class A { int x; } // comment\n/* multi\nline */" in
  let tags = List.map (fun t -> t.L.tok) toks in
  Alcotest.(check bool) "shape" true
    (tags = [ L.KW_CLASS; L.IDENT "A"; L.LBRACE; L.KW_INT; L.IDENT "x";
              L.SEMI; L.RBRACE; L.EOF ])

let lexes_operators () =
  let toks = L.tokenize "== != <= >= && || ++ = < >" in
  let tags = List.map (fun t -> t.L.tok) toks in
  Alcotest.(check bool) "ops" true
    (tags = [ L.EQ; L.NE; L.LE; L.GE; L.AMPAMP; L.BARBAR; L.PLUSPLUS;
              L.ASSIGN; L.LT; L.GT; L.EOF ])

let lexes_literals () =
  let toks = L.tokenize "42 3.25 \"hi\\n\" true false null" in
  let tags = List.map (fun t -> t.L.tok) toks in
  Alcotest.(check bool) "literals" true
    (tags = [ L.INT_LIT 42; L.DOUBLE_LIT 3.25; L.STRING_LIT "hi\n"; L.KW_TRUE;
              L.KW_FALSE; L.KW_NULL; L.EOF ])

let lex_error_position () =
  try
    ignore (L.tokenize "class A {\n  @\n}");
    Alcotest.fail "expected Lex_error"
  with L.Lex_error (_, line, _) -> Alcotest.(check int) "line 2" 2 line

(* --- parser --- *)

let parses_class_shape () =
  let ast = P.parse "remote class Svc extends Base { int x; double go(int a) { return 1.5; } }" in
  match ast.Jfront.Ast.classes with
  | [ c ] ->
      Alcotest.(check bool) "remote" true c.Jfront.Ast.c_remote;
      Alcotest.(check (option string)) "super" (Some "Base") c.Jfront.Ast.c_super;
      Alcotest.(check int) "one field" 1 (List.length c.Jfront.Ast.c_fields);
      Alcotest.(check int) "one method" 1 (List.length c.Jfront.Ast.c_methods)
  | _ -> Alcotest.fail "expected one class"

let parse_error_reports_position () =
  try
    ignore (P.parse "class A { int }");
    Alcotest.fail "expected Parse_error"
  with P.Parse_error (_, line, _) -> Alcotest.(check int) "line 1" 1 line

let parses_precedence () =
  (* 1 + 2 * 3 parses as 1 + (2 * 3) *)
  let ast = P.parse "class A { static int f() { return 1 + 2 * 3; } }" in
  match ast.Jfront.Ast.classes with
  | [ { Jfront.Ast.c_methods = [ m ]; _ } ] -> (
      match m.Jfront.Ast.m_body with
      | [ Jfront.Ast.S_return (Some (Jfront.Ast.E_binop (Jfront.Ast.Add, _, Jfront.Ast.E_binop (Jfront.Ast.Mul, _, _)))) ] -> ()
      | _ -> Alcotest.fail "wrong precedence")
  | _ -> Alcotest.fail "expected one class/method"

let parser_edge_cases () =
  (* nested calls, chained postfix, parenthesized receivers *)
  let ast =
    P.parse
      "class A { static int f() { return g(h(1), 2).x[3].y; } }"
  in
  (match ast.Jfront.Ast.classes with
  | [ { Jfront.Ast.c_methods = [ m ]; _ } ] -> (
      match m.Jfront.Ast.m_body with
      | [ Jfront.Ast.S_return (Some (Jfront.Ast.E_field (Jfront.Ast.E_index (Jfront.Ast.E_field (Jfront.Ast.E_call (None, "g", [ _; _ ]), "x"), _), "y"))) ] -> ()
      | _ -> Alcotest.fail "postfix chain misparsed")
  | _ -> Alcotest.fail "expected one class");
  (* unary minus binds tighter than multiplication *)
  let ast2 = P.parse "class A { static int f() { return -1 * 2; } }" in
  (match ast2.Jfront.Ast.classes with
  | [ { Jfront.Ast.c_methods = [ m ]; _ } ] -> (
      match m.Jfront.Ast.m_body with
      | [ Jfront.Ast.S_return (Some (Jfront.Ast.E_binop (Jfront.Ast.Mul, Jfront.Ast.E_unop (Jfront.Ast.Neg, _), _))) ] -> ()
      | _ -> Alcotest.fail "unary precedence misparsed")
  | _ -> Alcotest.fail "expected one class");
  (* declarations vs expression statements: A[] a; vs a[0] = 1; *)
  let ast3 =
    P.parse "class A { static void f() { A[] xs = null; xs[0] = null; } }"
  in
  (match ast3.Jfront.Ast.classes with
  | [ { Jfront.Ast.c_methods = [ m ]; _ } ] -> (
      match m.Jfront.Ast.m_body with
      | [ Jfront.Ast.S_decl (Jfront.Ast.Array (Jfront.Ast.Named "A"), "xs", Some Jfront.Ast.E_null);
          Jfront.Ast.S_assign (Jfront.Ast.L_index (_, _), Jfront.Ast.E_null) ] -> ()
      | _ -> Alcotest.fail "decl/index ambiguity misparsed")
  | _ -> Alcotest.fail "expected one class")

(* --- lowering + interpretation --- *)

let run_static prog name args =
  let mid = Lower.method_named prog name in
  Jir.Interp.run (Jir.Interp.create prog) mid args

let compiles_and_runs_arith () =
  let prog =
    compile
      {|
      class Math {
        static int gcd(int a, int b) {
          while (b != 0) { int t = b; b = a % b; a = t; }
          return a;
        }
        static int fib(int n) {
          if (n < 2) { return n; }
          return Math.gcd(0, 0) + Math.fib(n - 1) + Math.fib(n - 2);
        }
      }
      |}
  in
  (match run_static prog "Math.gcd" [ Jir.Interp.Vint 48; Jir.Interp.Vint 18 ] with
  | Jir.Interp.Vint 6 -> ()
  | v -> Alcotest.failf "gcd: %a" Jir.Interp.pp_value v);
  match run_static prog "Math.fib" [ Jir.Interp.Vint 10 ] with
  | Jir.Interp.Vint 55 -> ()
  | v -> Alcotest.failf "fib: %a" Jir.Interp.pp_value v

let compiles_objects_and_this () =
  let prog =
    compile
      {|
      class Counter {
        int value;
        void bump(int by) { value = value + by; }
        int get() { return this.value; }
        static int demo() {
          Counter c = new Counter();
          c.bump(40);
          c.bump(2);
          return c.get();
        }
      }
      |}
  in
  match run_static prog "Counter.demo" [] with
  | Jir.Interp.Vint 42 -> ()
  | v -> Alcotest.failf "demo: %a" Jir.Interp.pp_value v

let compiles_arrays_and_for () =
  let prog =
    compile
      {|
      class Arr {
        static int sum(int n) {
          int[] a = new int[n];
          for (int i = 0; i < a.length; i++) { a[i] = i * i; }
          int total = 0;
          for (int i = 0; i < n; i++) { total = total + a[i]; }
          return total;
        }
        static double matrix() {
          double[][] m = new double[3][4];
          m[2][3] = 2.5;
          return m[2][3] + m[0][0];
        }
      }
      |}
  in
  (match run_static prog "Arr.sum" [ Jir.Interp.Vint 5 ] with
  | Jir.Interp.Vint 30 -> ()
  | v -> Alcotest.failf "sum: %a" Jir.Interp.pp_value v);
  match run_static prog "Arr.matrix" [] with
  | Jir.Interp.Vdouble 2.5 -> ()
  | v -> Alcotest.failf "matrix: %a" Jir.Interp.pp_value v

let static_methods_of_remote_classes_are_local () =
  (* a static method of a remote class is not remotely invokable: it
     lowers to a plain local call (and needs no receiver) *)
  let prog =
    compile
      {|
      remote class Svc {
        static int helper(int x) { return x + 1; }
        int work(int x) { return Svc.helper(x) * 2; }
      }
      class Driver {
        static int main() { return Svc.helper(20); }
      }
      |}
  in
  (* no remote call sites come from the static calls *)
  Alcotest.(check int) "no rmi callsites" 0
    (List.length (Jir.Program.remote_callsites prog));
  match run_static prog "Driver.main" [] with
  | Jir.Interp.Vint 21 -> ()
  | v -> Alcotest.failf "static helper: %a" Jir.Interp.pp_value v

let compiles_numeric_promotion () =
  let prog =
    compile
      {|
      class P {
        static double mix(int i) { return i * 2.5 + 1; }
      }
      |}
  in
  match run_static prog "P.mix" [ Jir.Interp.Vint 4 ] with
  | Jir.Interp.Vdouble d -> Alcotest.(check (float 1e-9)) "4*2.5+1" 11.0 d
  | v -> Alcotest.failf "promotion: %a" Jir.Interp.pp_value v

let compiles_short_circuit () =
  let prog =
    compile
      {|
      class SC {
        static int calls;
        static boolean bump() { calls = calls + 1; return true; }
        static int demo() {
          calls = 0;
          boolean x = false && SC.bump();
          boolean y = true || SC.bump();
          if (x || !y) { return -1; }
          return calls;
        }
      }
      |}
  in
  match run_static prog "SC.demo" [] with
  | Jir.Interp.Vint 0 -> ()
  | v -> Alcotest.failf "short circuit: %a" Jir.Interp.pp_value v

let compiles_inheritance () =
  let prog =
    compile
      {|
      class Base { int b; }
      class Derived extends Base { int d;
        static int demo() {
          Derived o = new Derived();
          o.b = 30; o.d = 12;
          return o.b + o.d;
        }
      }
      |}
  in
  match run_static prog "Derived.demo" [] with
  | Jir.Interp.Vint 42 -> ()
  | v -> Alcotest.failf "inheritance: %a" Jir.Interp.pp_value v

let rejects_errors () =
  List.iter
    (fun (what, src) ->
      match Lower.compile_result src with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "%s should not compile" what)
    [
      ("unknown class", "class A { static void f() { B x = null; } }");
      ("unknown field", "class A { static void f() { A a = new A(); a.x = 1; } }");
      ("unknown method", "class A { static void f() { A a = new A(); a.g(); } }");
      ("arity", "class A { static void g(int x) {} static void f() { A.g(); } }");
      ("void as value", "class A { static void g() {} static void f() { int x = A.g(); } }");
      ("cyclic extends", "class A extends B {} class B extends A {}");
      ("return mismatch", "class A { static void f() { return 5; } }");
      ("remote this",
       "remote class R { int x; void m() { x = 1; } }");
    ]

(* --- printer/parser roundtrip ------------------------------------- *)

let gen_expr =
  let open QCheck.Gen in
  let ident = oneofl [ "x"; "y"; "foo"; "bar" ] in
  let leaf =
    oneof
      [
        map (fun i -> Jfront.Ast.E_int i) (int_bound 1000);
        oneofl
          [ Jfront.Ast.E_double 0.5; Jfront.Ast.E_double 1.25;
            Jfront.Ast.E_double 3.0 ];
        map (fun b -> Jfront.Ast.E_bool b) bool;
        return Jfront.Ast.E_null;
        map (fun v -> Jfront.Ast.E_var v) ident;
        map (fun s -> Jfront.Ast.E_string s)
          (string_size ~gen:(char_range 'a' 'z') (int_bound 6));
      ]
  in
  fix
    (fun self depth ->
      if depth = 0 then leaf
      else
        frequency
          [
            (3, leaf);
            ( 2,
              map3
                (fun op l r -> Jfront.Ast.E_binop (op, l, r))
                (oneofl
                   Jfront.Ast.
                     [ Add; Sub; Mul; Div; Rem; Eq; Ne; Lt; Le; Gt; Ge; And; Or ])
                (self (depth - 1))
                (self (depth - 1)) );
            ( 1,
              map2
                (fun op e -> Jfront.Ast.E_unop (op, e))
                (oneofl Jfront.Ast.[ Neg; Not ])
                (self (depth - 1)) );
            (1, map2 (fun e f -> Jfront.Ast.E_field (e, f)) (self (depth - 1)) ident);
            ( 1,
              map2
                (fun e i -> Jfront.Ast.E_index (e, i))
                (self (depth - 1))
                (self (depth - 1)) );
            ( 1,
              map2
                (fun name args -> Jfront.Ast.E_call (None, name, args))
                ident
                (list_size (int_bound 3) (self (depth - 1))) );
            ( 1,
              map3
                (fun recv name args -> Jfront.Ast.E_call (Some recv, name, args))
                (self (depth - 1))
                ident
                (list_size (int_bound 2) (self (depth - 1))) );
            (1, map (fun c -> Jfront.Ast.E_new c) (oneofl [ "A"; "B" ]));
          ])
    3

let gen_stmt =
  let open QCheck.Gen in
  let ty = oneofl Jfront.Ast.[ Int; Double; Bool; Named "A"; Array Int ] in
  let ident = oneofl [ "x"; "y"; "z" ] in
  fix
    (fun self depth ->
      let leaf =
        oneof
          [
            map3 (fun t n e -> Jfront.Ast.S_decl (t, n, Some e)) ty ident gen_expr;
            map2 (fun n e -> Jfront.Ast.S_assign (Jfront.Ast.L_var n, e)) ident gen_expr;
            map (fun e -> Jfront.Ast.S_return (Some e)) gen_expr;
            return (Jfront.Ast.S_return None);
          ]
      in
      if depth = 0 then leaf
      else
        frequency
          [
            (4, leaf);
            ( 1,
              map3
                (fun c t e -> Jfront.Ast.S_if (c, t, e))
                gen_expr
                (list_size (int_bound 2) (self (depth - 1)))
                (list_size (int_bound 2) (self (depth - 1))) );
            ( 1,
              map2
                (fun c body -> Jfront.Ast.S_while (c, body))
                gen_expr
                (list_size (int_bound 2) (self (depth - 1))) );
          ])
    2

let gen_program =
  let open QCheck.Gen in
  map
    (fun (fields, body) ->
      {
        Jfront.Ast.classes =
          [
            { Jfront.Ast.c_remote = false; c_name = "A"; c_super = None;
              c_fields = []; c_statics = []; c_methods = [] };
            { Jfront.Ast.c_remote = true; c_name = "B"; c_super = None;
              c_fields = fields; c_statics = [];
              c_methods =
                [
                  { Jfront.Ast.m_static = true; m_ret = Jfront.Ast.Int;
                    m_name = "go"; m_params = [ (Jfront.Ast.Int, "n") ];
                    m_body = body };
                ] };
          ];
      })
    (pair
       (list_size (int_bound 3)
          (pair (oneofl Jfront.Ast.[ Int; Named "A" ]) (oneofl [ "f"; "g"; "h" ])))
       (list_size (int_bound 5) gen_stmt))

let arb_program =
  QCheck.make ~print:Jfront.Pretty_ast.program_to_string gen_program

let prop_print_parse_roundtrip =
  QCheck.Test.make ~name:"parse (print ast) = ast" ~count:300 arb_program
    (fun ast ->
      (* duplicate field names confuse nothing at parse level; compare
         structurally *)
      let printed = Jfront.Pretty_ast.program_to_string ast in
      match P.parse printed with
      | reparsed -> reparsed = ast
      | exception (P.Parse_error (msg, l, c)) ->
          QCheck.Test.fail_reportf "parse error %s at %d:%d in:\n%s" msg l c
            printed)

let else_if_chains () =
  let prog =
    compile
      {|
      class C {
        static int classify(int n) {
          if (n < 0) { return -1; }
          else if (n == 0) { return 0; }
          else if (n < 10) { return 1; }
          else { return 2; }
        }
      }
      |}
  in
  List.iter
    (fun (input, expect) ->
      match run_static prog "C.classify" [ Jir.Interp.Vint input ] with
      | Jir.Interp.Vint v ->
          Alcotest.(check int) (Printf.sprintf "classify %d" input) expect v
      | v -> Alcotest.failf "bad %a" Jir.Interp.pp_value v)
    [ (-5, -1); (0, 0); (5, 1); (50, 2) ]

(* --- the paper's Figure 12, as source, through the whole pipeline --- *)

let figure12_source =
  {|
  remote class ArrayBench {
    void send(double[][] arr) { }
  }
  class Driver {
    static void benchmark() {
      double[][] arr = new double[16][16];
      ArrayBench f = new ArrayBench();
      for (int i = 0; i < 100; i++) { f.send(arr); }
    }
  }
  |}

let figure12_through_optimizer () =
  let prog = compile figure12_source in
  let opt = Rmi_core.Optimizer.run prog in
  match opt.Rmi_core.Optimizer.decisions with
  | [ d ] ->
      Alcotest.(check bool) "acyclic" true d.Rmi_core.Optimizer.args_acyclic;
      Alcotest.(check bool) "reusable" true
        (Rmi_core.Escape_analysis.is_reusable d.Rmi_core.Optimizer.arg_escape.(0));
      (match d.Rmi_core.Optimizer.plan.Rmi_core.Plan.args with
      | [| Rmi_core.Plan.S_flat_array { felem = Rmi_core.Plan.F_darr } |] -> ()
      | _ -> Alcotest.fail "expected the Figure 13 (flat) plan");
      Alcotest.(check bool) "ack-only" true
        (d.Rmi_core.Optimizer.plan.Rmi_core.Plan.ret = None)
  | ds -> Alcotest.failf "expected one callsite, got %d" (List.length ds)

(* Figure 14: the linked list, as source *)
let figure14_source =
  {|
  class LinkedList {
    LinkedList next;
  }
  remote class Foo {
    void send(LinkedList l) { }
  }
  class Driver {
    static void benchmark() {
      LinkedList head = null;
      for (int i = 0; i < 100; i++) {
        LinkedList n = new LinkedList();
        n.next = head;
        head = n;
      }
      Foo f = new Foo();
      f.send(head);
    }
  }
  |}

let figure14_through_optimizer () =
  let prog = compile figure14_source in
  let opt = Rmi_core.Optimizer.run prog in
  match opt.Rmi_core.Optimizer.decisions with
  | [ d ] ->
      Alcotest.(check bool) "conservatively cyclic" false
        d.Rmi_core.Optimizer.args_acyclic;
      Alcotest.(check bool) "reusable" true
        (Rmi_core.Escape_analysis.is_reusable d.Rmi_core.Optimizer.arg_escape.(0))
  | _ -> Alcotest.fail "expected one callsite"

(* Figure 11: escape through a static *)
let figure11_source =
  {|
  class Data { int payload; }
  class Bar { Data d; }
  remote class Foo {
    static Data d;
    void foo(Bar a) { Foo.d = a.d; }
  }
  class Driver {
    static void go() {
      Foo f = new Foo();
      Bar b = new Bar();
      b.d = new Data();
      f.foo(b);
    }
  }
  |}

let figure11_through_optimizer () =
  let prog = compile figure11_source in
  let opt = Rmi_core.Optimizer.run prog in
  match opt.Rmi_core.Optimizer.decisions with
  | [ d ] ->
      Alcotest.(check bool) "escapes" false
        (Rmi_core.Escape_analysis.is_reusable d.Rmi_core.Optimizer.arg_escape.(0))
  | _ -> Alcotest.fail "expected one callsite"

(* remote call semantics through source: deep copies *)
let remote_semantics_from_source () =
  let prog =
    compile
      {|
      class Box { int v; }
      remote class Svc {
        void mutate(Box b) { b.v = 99; }
      }
      class Driver {
        static int demo() {
          Box mine = new Box();
          mine.v = 7;
          Svc s = new Svc();
          s.mutate(mine);
          return mine.v;
        }
      }
      |}
  in
  match run_static prog "Driver.demo" [] with
  | Jir.Interp.Vint 7 -> ()
  | v -> Alcotest.failf "deep copy violated: %a" Jir.Interp.pp_value v

let suite =
  [
    ( "jfront.lexer",
      [
        Alcotest.test_case "tokens" `Quick lexes_tokens;
        Alcotest.test_case "operators" `Quick lexes_operators;
        Alcotest.test_case "literals" `Quick lexes_literals;
        Alcotest.test_case "error position" `Quick lex_error_position;
      ] );
    ( "jfront.parser",
      [
        Alcotest.test_case "class shape" `Quick parses_class_shape;
        Alcotest.test_case "error position" `Quick parse_error_reports_position;
        Alcotest.test_case "precedence" `Quick parses_precedence;
        Alcotest.test_case "edge cases" `Quick parser_edge_cases;
      ] );
    ( "jfront.lowering",
      [
        Alcotest.test_case "arith, loops, recursion" `Quick compiles_and_runs_arith;
        Alcotest.test_case "objects and this" `Quick compiles_objects_and_this;
        Alcotest.test_case "arrays and for" `Quick compiles_arrays_and_for;
        Alcotest.test_case "short circuit" `Quick compiles_short_circuit;
        Alcotest.test_case "numeric promotion" `Quick compiles_numeric_promotion;
        Alcotest.test_case "remote-class statics are local" `Quick
          static_methods_of_remote_classes_are_local;
        Alcotest.test_case "inheritance" `Quick compiles_inheritance;
        Alcotest.test_case "rejects bad programs" `Quick rejects_errors;
        Alcotest.test_case "else-if chains" `Quick else_if_chains;
      ] );
    ( "jfront.printer",
      [ Fixtures.qcheck_case prop_print_parse_roundtrip ] );
    ( "jfront.pipeline",
      [
        Alcotest.test_case "figure 12 source -> figure 13 plan" `Quick
          figure12_through_optimizer;
        Alcotest.test_case "figure 14 source -> cyclic verdict" `Quick
          figure14_through_optimizer;
        Alcotest.test_case "figure 11 source -> escape verdict" `Quick
          figure11_through_optimizer;
        Alcotest.test_case "remote deep copy from source" `Quick
          remote_semantics_from_source;
      ] );
  ]
