let suites =
  Test_wire.suite @ Test_jir.suite @ Test_ssa.suite @ Test_heap.suite
  @ Test_cycle.suite @ Test_escape.suite @ Test_codegen.suite
  @ Test_serial.suite @ Test_arena.suite @ Test_runtime.suite
  @ Test_apps.suite @ Test_net.suite @ Test_stats.suite @ Test_harness.suite
  @ Test_soundness.suite @ Test_jfront.suite @ Test_differential.suite
  @ Test_faults.suite @ Test_reliable.suite @ Test_internals.suite
  @ Test_edge.suite @ Test_distributed.suite @ Test_optim.suite
  @ Test_futures.suite @ Test_crash.suite @ Test_tiers.suite
  @ Test_load.suite @ Test_transport.suite @ Test_chaos.suite

(* a per-suite census up front, so a run that silently drops a suite
   (or a registration that forgets one) is visible at a glance *)
let () =
  let total =
    List.fold_left
      (fun acc (name, cases) ->
        Printf.printf "%-24s %3d tests\n" name (List.length cases);
        acc + List.length cases)
      0 suites
  in
  Printf.printf "%-24s %3d tests in %d suites\n%!" "total" total
    (List.length suites);
  Alcotest.run "rmi-repro" suites
