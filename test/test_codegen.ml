(* Plan-generation tests: the inlined marshaler shapes of Figures 6 and
   13, dynamic fallbacks, inlining budgets, and the optimizer driver. *)

open Rmi_core
module HA = Heap_analysis

let analyze prog =
  Rmi_ssa.Ssa.convert prog;
  HA.analyze prog

let callsite_of r site =
  match HA.callsite r site with
  | Some cs -> cs
  | None -> Alcotest.fail "callsite not found"

let plan_step_str s = Format.asprintf "%a" Plan.pp_step s

let fig13_array_plan () =
  let fx = Fixtures.array2d () in
  let r = analyze fx.s_prog in
  let cs = callsite_of r fx.s_site in
  let plan = Codegen.plan_for r cs in
  (* the generated marshaler of Figure 13, fused into the flat
     struct-of-arrays step (PR 10): one shape check for the whole
     double[][], rows decoded straight into unboxed storage.  No cycle
     table, argument reusable, ack-only reply. *)
  (match plan.Plan.args with
  | [| Plan.S_flat_array { felem = Plan.F_darr } |] -> ()
  | [| s |] -> Alcotest.failf "unexpected step %s" (plan_step_str s)
  | _ -> Alcotest.fail "expected one arg");
  Alcotest.(check bool) "cycle table removed" false plan.Plan.cycle_args;
  Alcotest.(check bool) "reuse enabled" true plan.Plan.reuse_args.(0);
  Alcotest.(check bool) "escape verdict lifted to the plan" true
    plan.Plan.non_escaping;
  Alcotest.(check bool) "ack-only reply" true (plan.Plan.ret = None)

let fig5_per_callsite_specialization () =
  let fx = Fixtures.fig5 () in
  Rmi_ssa.Ssa.convert fx.f5_prog;
  let r = HA.analyze fx.f5_prog in
  match fx.f5_sites with
  | [ s1; s2 ] ->
      let p1 = Codegen.plan_for r (callsite_of r s1) in
      let p2 = Codegen.plan_for r (callsite_of r s2) in
      (* callsite 1 passes Derived1, callsite 2 passes Derived2 whose
         field p is itself inlined as Derived1 (paper Figure 6) *)
      (match p1.Plan.args.(0) with
      | Plan.S_obj { cls; fields } ->
          Alcotest.(check int) "derived1 inferred" fx.f5_derived1 cls;
          Alcotest.(check int) "one int field" 1 (Array.length fields);
          Alcotest.(check bool) "int field inline" true (fields.(0) = Plan.S_int)
      | s -> Alcotest.failf "site1: unexpected %s" (plan_step_str s));
      (match p2.Plan.args.(0) with
      | Plan.S_obj { cls; fields } ->
          Alcotest.(check int) "derived2 inferred" fx.f5_derived2 cls;
          (match fields.(0) with
          | Plan.S_obj { cls; fields = inner } ->
              Alcotest.(check int) "p field inlined as Derived1" fx.f5_derived1 cls;
              Alcotest.(check bool) "inner int inline" true (inner.(0) = Plan.S_int)
          | s -> Alcotest.failf "site2 field: unexpected %s" (plan_step_str s))
      | s -> Alcotest.failf "site2: unexpected %s" (plan_step_str s))
  | _ -> Alcotest.fail "expected two callsites"

let recursive_type_becomes_self_reference () =
  (* the linked list's next field points back into the same allocation
     site: the plan must tie the knot with a recursive definition — the
     paper's direct untagged recursive serializer call — rather than
     unrolling or falling all the way back to the dynamic path *)
  let fx = Fixtures.linked_list () in
  let r = analyze fx.s_prog in
  let cs = callsite_of r fx.s_site in
  let plan = Codegen.plan_for r cs in
  (match plan.Plan.args.(0) with
  | Plan.S_ref d -> (
      match plan.Plan.defs.(d) with
      | Plan.S_obj { fields = [| Plan.S_ref d' |]; _ } ->
          Alcotest.(check int) "next recurses on the same def" d d'
      | s -> Alcotest.failf "unexpected def %s" (plan_step_str s))
  | s -> Alcotest.failf "unexpected %s" (plan_step_str s));
  Alcotest.(check bool) "cycle table kept" true plan.Plan.cycle_args;
  Alcotest.(check bool) "still reusable" true plan.Plan.reuse_args.(0)

let mixed_types_fall_back_to_dyn () =
  (* one callsite whose argument can be two different classes *)
  let open Jir in
  let b = Builder.create () in
  let base = Builder.declare_class b "Base" in
  let d1 = Builder.declare_class b ~super:base "D1" in
  let d2 = Builder.declare_class b ~super:base "D2" in
  let work = Builder.declare_class b ~remote:true "Work" in
  let foo =
    Builder.declare_method b ~owner:work ~name:"Work.foo" ~params:[ Tobject base ]
      ~ret:Tvoid ()
  in
  Builder.define b foo (fun mb -> Builder.ret mb None);
  let go = Builder.declare_method b ~name:"go" ~params:[ Tbool ] ~ret:Tvoid () in
  Builder.define b go (fun mb ->
      let w = Builder.alloc mb work in
      let x = Builder.fresh mb (Tobject base) in
      Builder.if_ mb
        (Var (Builder.param mb 0))
        (fun () ->
          let o = Builder.alloc mb d1 in
          Builder.move mb x (Var o))
        (fun () ->
          let o = Builder.alloc mb d2 in
          Builder.move mb x (Var o));
      Builder.rcall_ignore mb (Var w) foo [ Var x ];
      Builder.ret mb None);
  let fx = Fixtures.one_site (Builder.finish b) in
  let r = analyze fx.s_prog in
  let plan = Codegen.plan_for r (callsite_of r fx.s_site) in
  Alcotest.(check bool) "ambiguous type -> dyn" true
    (plan.Plan.args.(0) = Plan.S_dyn)

let depth_budget_respected () =
  (* a deep chain of distinct classes: inlining stops at the depth cap *)
  let open Jir in
  let b = Builder.create () in
  let depth = 12 in
  let classes = Array.init depth (fun i -> Builder.declare_class b (Printf.sprintf "C%d" i)) in
  let fields =
    Array.init (depth - 1) (fun i ->
        Builder.add_field b classes.(i) "next" (Tobject classes.(i + 1)))
  in
  let work = Builder.declare_class b ~remote:true "Work" in
  let foo =
    Builder.declare_method b ~owner:work ~name:"Work.foo"
      ~params:[ Tobject classes.(0) ] ~ret:Tvoid ()
  in
  Builder.define b foo (fun mb -> Builder.ret mb None);
  let go = Builder.declare_method b ~name:"go" ~params:[] ~ret:Tvoid () in
  Builder.define b go (fun mb ->
      let w = Builder.alloc mb work in
      let objs = Array.map (fun c -> Builder.alloc mb c) classes in
      for i = 0 to depth - 2 do
        Builder.store_field mb objs.(i) fields.(i) (Var objs.(i + 1))
      done;
      Builder.rcall_ignore mb (Var w) foo [ Var objs.(0) ];
      Builder.ret mb None);
  let fx = Fixtures.one_site (Builder.finish b) in
  let r = analyze fx.s_prog in
  let config = { Codegen.max_inline_depth = 3; max_plan_size = 1000 } in
  let plan = Codegen.plan_for ~config r (callsite_of r fx.s_site) in
  let rec max_depth = function
    | Plan.S_obj { fields; _ } ->
        1 + Array.fold_left (fun acc s -> max acc (max_depth s)) 0 fields
    | Plan.S_obj_array { elem } -> 1 + max_depth elem
    | _ -> 0
  in
  Alcotest.(check bool) "inline depth capped" true
    (max_depth plan.Plan.args.(0) <= 4);
  (* with a generous depth the whole chain inlines *)
  let config = { Codegen.max_inline_depth = 20; max_plan_size = 1000 } in
  let plan2 = Codegen.plan_for ~config r (callsite_of r fx.s_site) in
  Alcotest.(check bool) "full inline at depth 20" true
    (max_depth plan2.Plan.args.(0) >= depth - 1)

let size_budget_falls_back () =
  let fx = Fixtures.array2d () in
  let r = analyze fx.s_prog in
  let cs = callsite_of r fx.s_site in
  let config = { Codegen.max_inline_depth = 8; max_plan_size = 1 } in
  let plan = Codegen.plan_for ~config r cs in
  Alcotest.(check bool) "budget forces dyn" true (plan.Plan.args.(0) = Plan.S_dyn)

let statically_null_field () =
  (* a field no allocation ever reaches serializes as zero bytes *)
  let open Jir in
  let b = Builder.create () in
  let leaf = Builder.declare_class b "Leaf" in
  let node = Builder.declare_class b "Node" in
  let used = Builder.add_field b node "used" Tint in
  let unused = Builder.add_field b node "unused" (Tobject leaf) in
  ignore used;
  ignore unused;
  let work = Builder.declare_class b ~remote:true "Work" in
  let foo =
    Builder.declare_method b ~owner:work ~name:"Work.foo" ~params:[ Tobject node ]
      ~ret:Tvoid ()
  in
  Builder.define b foo (fun mb -> Builder.ret mb None);
  let go = Builder.declare_method b ~name:"go" ~params:[] ~ret:Tvoid () in
  Builder.define b go (fun mb ->
      let w = Builder.alloc mb work in
      let n = Builder.alloc mb node in
      Builder.store_field mb n used (Int 5);
      Builder.rcall_ignore mb (Var w) foo [ Var n ];
      Builder.ret mb None);
  let fx = Fixtures.one_site (Builder.finish b) in
  let r = analyze fx.s_prog in
  let plan = Codegen.plan_for r (callsite_of r fx.s_site) in
  match plan.Plan.args.(0) with
  | Plan.S_obj { fields = [| Plan.S_int; Plan.S_null |]; _ } -> ()
  | s -> Alcotest.failf "unexpected %s" (plan_step_str s)

let recursion_through_arrays () =
  (* a tree whose children live in an object array: when the recursion
     closes over the same allocation sites, the plan must tie the knot
     (here the root and the children are distinct sites holding a shared
     array site, so the array's element step recurses on the child) *)
  let open Jir in
  let b = Builder.create () in
  let node = Builder.declare_class b "Node" in
  let kids = Builder.add_field b node "kids" (Tarray (Tobject node)) in
  let work = Builder.declare_class b ~remote:true "Work" in
  let foo =
    Builder.declare_method b ~owner:work ~name:"Work.foo" ~params:[ Tobject node ]
      ~ret:Tvoid ()
  in
  Builder.define b foo (fun mb -> Builder.ret mb None);
  let go = Builder.declare_method b ~name:"go" ~params:[] ~ret:Tvoid () in
  Builder.define b go (fun mb ->
      let w = Builder.alloc mb work in
      let root = Builder.alloc mb node in
      let arr = Builder.alloc_array mb (Tobject node) (Int 2) in
      (* self-recursive shape: the root's own site is an element *)
      Builder.store_elem mb arr (Int 0) (Var root);
      Builder.store_field mb root kids (Var arr);
      Builder.rcall_ignore mb (Var w) foo [ Var root ];
      Builder.ret mb None);
  let fx = Fixtures.one_site (Builder.finish b) in
  let r = analyze fx.s_prog in
  let plan = Codegen.plan_for r (callsite_of r fx.s_site) in
  (match plan.Plan.args.(0) with
  | Plan.S_ref d -> (
      match plan.Plan.defs.(d) with
      | Plan.S_obj { fields = [| Plan.S_obj_array { elem = Plan.S_ref d' } |]; _ }
        ->
          Alcotest.(check int) "knot tied through the array" d d'
      | s -> Alcotest.failf "unexpected def %s" (plan_step_str s))
  | s -> Alcotest.failf "unexpected %s" (plan_step_str s));
  Alcotest.(check bool) "cyclic verdict" true plan.Plan.cycle_args

let optimizer_driver_end_to_end () =
  let fx = Fixtures.array2d () in
  let opt = Optimizer.run fx.s_prog in
  Alcotest.(check int) "one decision" 1 (List.length opt.Optimizer.decisions);
  let d = List.hd opt.Optimizer.decisions in
  Alcotest.(check bool) "acyclic" true d.Optimizer.args_acyclic;
  Alcotest.(check bool) "reusable" true
    (Rmi_core.Escape_analysis.is_reusable d.Optimizer.arg_escape.(0));
  (* report renders without raising and mentions the callsite *)
  let report = Optimizer.report opt in
  Alcotest.(check bool) "report nonempty" true (String.length report > 50);
  (* unknown sites fall back to a generic plan *)
  let generic = Optimizer.plan_for_site opt 9999 ~nargs:2 ~has_ret:true in
  Alcotest.(check bool) "generic cycle on" true generic.Plan.cycle_args;
  Alcotest.(check bool) "generic dyn" true (generic.Plan.args.(0) = Plan.S_dyn)

let plan_size_accounting () =
  let p = Plan.generic ~callsite:0 ~nargs:3 ~has_ret:true in
  Alcotest.(check int) "generic size" 4 (Plan.size p)

(* --- plan edge cases: the generic tier and deoptimization --- *)

let generic_plan_invariants () =
  let p = Plan.generic ~callsite:5 ~nargs:3 ~has_ret:true in
  Alcotest.(check int) "version zero" Plan.generic_version p.Plan.version;
  Alcotest.(check bool) "not polluted" false p.Plan.polluted;
  Alcotest.(check bool) "all args dyn" true
    (Array.for_all (fun s -> s = Plan.S_dyn) p.Plan.args);
  Alcotest.(check bool) "ret dyn" true (p.Plan.ret = Some Plan.S_dyn);
  Alcotest.(check bool) "cycle tables on" true
    (p.Plan.cycle_args && p.Plan.cycle_ret);
  Alcotest.(check bool) "no reuse" true
    ((not p.Plan.reuse_ret)
    && Array.for_all (fun r -> not r) p.Plan.reuse_args);
  Alcotest.(check int) "no recursive defs" 0 (Array.length p.Plan.defs);
  let ack = Plan.generic ~callsite:5 ~nargs:1 ~has_ret:false in
  Alcotest.(check bool) "ack-only generic" true (ack.Plan.ret = None)

let widen_invariants () =
  let fx = Fixtures.array2d () in
  let r = analyze fx.s_prog in
  let plan = Codegen.plan_for r (callsite_of r fx.s_site) in
  Alcotest.(check int) "compiled plans are version 1" 1 plan.Plan.version;
  let w = Plan.widen plan (`Arg 0) in
  Alcotest.(check int) "version bumped" 2 w.Plan.version;
  Alcotest.(check bool) "polluted" true w.Plan.polluted;
  Alcotest.(check bool) "position widened" true (w.Plan.args.(0) = Plan.S_dyn);
  Alcotest.(check bool) "cycle table back on" true w.Plan.cycle_args;
  Alcotest.(check bool) "reuse disabled" false w.Plan.reuse_args.(0);
  (* widening is monotone: a second widening of the same ack-only plan
     can only touch arguments *)
  (match Plan.widen plan (`Arg 7) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "out-of-range arg must be rejected");
  match Plan.widen plan `Ret with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "widening the ret of an ack-only plan must be rejected"

(* --- plan store: cache hits, publication, invalidation --- *)

let store_of fx = Plan_store.create (Plan_store.source_of_optimizer (Optimizer.run fx.Fixtures.s_prog))

let fresh_plan fx =
  let opt = Optimizer.run fx.Fixtures.s_prog in
  Optimizer.plan_for_site opt fx.Fixtures.s_site ~nargs:1 ~has_ret:false

let plan_store_hit_and_publish () =
  let fx = Fixtures.array2d () in
  let store = store_of fx in
  let site = fx.Fixtures.s_site in
  (match Plan_store.get store ~site with
  | Some (p, Plan_store.Compiled) ->
      Alcotest.(check bool) "first get compiles the fresh plan" true
        (p = fresh_plan fx)
  | Some (_, _) -> Alcotest.fail "expected Compiled"
  | None -> Alcotest.fail "site must compile");
  (match Plan_store.get store ~site with
  | Some (_, Plan_store.Hit) -> ()
  | _ -> Alcotest.fail "second get must hit");
  Alcotest.(check int) "one miss" 1 (Plan_store.misses store);
  Alcotest.(check int) "one hit" 1 (Plan_store.hits store);
  Alcotest.(check int) "no invalidation" 0 (Plan_store.invalidations store);
  (* the deoptimizer publishes a widened plan: it becomes latest while
     the older version stays addressable for in-flight decodes *)
  let v1 = fresh_plan fx in
  Plan_store.publish store (Plan.widen v1 (`Arg 0));
  (match Plan_store.get store ~site with
  | Some (p, Plan_store.Hit) ->
      Alcotest.(check int) "widened plan is latest" 2 p.Plan.version;
      Alcotest.(check bool) "latest is polluted" true p.Plan.polluted
  | _ -> Alcotest.fail "expected a hit on the published plan");
  match Plan_store.version store ~site 1 with
  | Some p -> Alcotest.(check int) "old version addressable" 1 p.Plan.version
  | None -> Alcotest.fail "version 1 must remain cached"

let plan_store_invalidates_on_edit () =
  let fx = Fixtures.array2d () in
  let store = store_of fx in
  let site = fx.Fixtures.s_site in
  ignore (Plan_store.get store ~site);
  Plan_store.publish store (Plan.widen (fresh_plan fx) (`Arg 0));
  (* edit the caller's body slice: the content hash moves, so the next
     get drops every cached version — widened descendants included —
     and recompiles *)
  Array.iter
    (fun (m : Jir.Program.method_decl) ->
      m.Jir.Program.var_types <-
        Array.append m.Jir.Program.var_types [| Jir.Types.Tint |])
    fx.Fixtures.s_prog.Jir.Program.methods;
  (match Plan_store.get store ~site with
  | Some (p, Plan_store.Invalidated) ->
      Alcotest.(check int) "recompiled from scratch" 1 p.Plan.version;
      Alcotest.(check bool) "pollution gone" false p.Plan.polluted
  | _ -> Alcotest.fail "expected Invalidated");
  Alcotest.(check int) "invalidation counted" 1
    (Plan_store.invalidations store);
  Alcotest.(check bool) "stale widened version dropped" true
    (Plan_store.version store ~site 2 = None)

(* cached ≡ fresh under any interleaving of edits and lookups *)
let prop_cached_equals_fresh =
  QCheck.Test.make ~name:"plan store: cached plan = fresh compile" ~count:60
    QCheck.(small_list bool)
    (fun edits ->
      let fx = Fixtures.array2d () in
      let store = store_of fx in
      let site = fx.Fixtures.s_site in
      List.for_all
        (fun edit ->
          if edit then
            Array.iter
              (fun (m : Jir.Program.method_decl) ->
                m.Jir.Program.var_types <-
                  Array.append m.Jir.Program.var_types [| Jir.Types.Tint |])
              fx.Fixtures.s_prog.Jir.Program.methods;
          match Plan_store.get store ~site with
          | Some (cached, _) -> cached = fresh_plan fx
          | None -> false)
        edits)

let suite =
  [
    ( "codegen.plans",
      [
        Alcotest.test_case "figure 13 array marshaler" `Quick fig13_array_plan;
        Alcotest.test_case "figure 5/6 per-callsite specialization" `Quick
          fig5_per_callsite_specialization;
        Alcotest.test_case "recursive type -> self reference" `Quick
          recursive_type_becomes_self_reference;
        Alcotest.test_case "ambiguous type -> dyn" `Quick mixed_types_fall_back_to_dyn;
        Alcotest.test_case "inline depth budget" `Quick depth_budget_respected;
        Alcotest.test_case "plan size budget" `Quick size_budget_falls_back;
        Alcotest.test_case "statically null field" `Quick statically_null_field;
        Alcotest.test_case "recursion through arrays" `Quick recursion_through_arrays;
        Alcotest.test_case "plan size accounting" `Quick plan_size_accounting;
        Alcotest.test_case "generic plan invariants" `Quick generic_plan_invariants;
        Alcotest.test_case "widen invariants" `Quick widen_invariants;
      ] );
    ( "codegen.plan_store",
      [
        Alcotest.test_case "hit, publish, versions" `Quick
          plan_store_hit_and_publish;
        Alcotest.test_case "program edit invalidates" `Quick
          plan_store_invalidates_on_edit;
        Fixtures.qcheck_case prop_cached_equals_fresh;
      ] );
    ( "codegen.optimizer",
      [ Alcotest.test_case "end to end driver" `Quick optimizer_driver_end_to_end ] );
  ]
