(* End-to-end RMI runtime tests: calls across the simulated cluster in
   both execution modes, under every optimization configuration. *)

open Rmi_runtime
module Value = Rmi_serial.Value
module Metrics = Rmi_stats.Metrics
module Plan = Rmi_core.Plan

let meta =
  Rmi_serial.Class_meta.make
    [
      ("Cell", [ ("next", Jir.Types.Tobject 0) ]);
      ("Box", [ ("v", Jir.Types.Tint) ]);
    ]

let no_plans () : (int, Plan.t) Hashtbl.t = Hashtbl.create 4

let make_fabric ?(mode = Fabric.Sync) ?(plans = no_plans ()) ?(config = Config.class_)
    ?(n = 2) () =
  let metrics = Metrics.create () in
  Fabric.create ~mode ~n ~meta ~config ~plans ~metrics ()

(* exported method ids for the tests *)
let m_incr = 1 (* Box -> Box with v+1 *)
let m_sum = 2 (* double[] -> double *)
let m_void = 3 (* fire and forget *)
let m_boom = 4 (* always raises *)

let export_all fabric =
  for i = 0 to Fabric.size fabric - 1 do
    let node = Fabric.node fabric i in
    Node.export node ~obj:0 ~meth:m_incr ~has_ret:true (fun args ->
        match args.(0) with
        | Value.Obj o ->
            let b = Value.new_obj ~cls:1 ~nfields:1 in
            (b.fields.(0) <-
               (match o.fields.(0) with
               | Value.Int v -> Value.Int (v + 1)
               | _ -> Value.Int 0));
            Some (Value.Obj b)
        | _ -> failwith "expected Box");
    Node.export node ~obj:0 ~meth:m_sum ~has_ret:true (fun args ->
        match args.(0) with
        | Value.Darr a ->
            Some (Value.Double (Array.fold_left ( +. ) 0.0 a.d))
        | _ -> failwith "expected double[]");
    Node.export node ~obj:0 ~meth:m_void ~has_ret:false (fun _ -> None);
    Node.export node ~obj:0 ~meth:m_boom ~has_ret:true (fun _ ->
        failwith "kaboom")
  done

let box v =
  let b = Value.new_obj ~cls:1 ~nfields:1 in
  b.fields.(0) <- Value.Int v;
  Value.Obj b

let call_roundtrip_all_configs () =
  List.iter
    (fun config ->
      let fabric = make_fabric ~config () in
      export_all fabric;
      Fabric.run fabric (fun fabric ->
          let caller = Fabric.node fabric 0 in
          let dest = Remote_ref.make ~machine:1 ~obj:0 in
          match
            Node.call caller ~dest ~meth:m_incr ~callsite:100 ~has_ret:true
              [| box 41 |]
          with
          | Some (Value.Obj o) -> (
              match o.fields.(0) with
              | Value.Int 42 -> ()
              | v ->
                  Alcotest.failf "[%s] expected 42, got %a" config.Config.name
                    Value.pp v)
          | v ->
              Alcotest.failf "[%s] unexpected result %s" config.Config.name
                (match v with None -> "None" | Some v -> Format.asprintf "%a" Value.pp v)))
    Config.all

let parallel_mode_roundtrip () =
  let fabric = make_fabric ~mode:Fabric.Parallel () in
  export_all fabric;
  Fabric.run fabric (fun fabric ->
      let caller = Fabric.node fabric 0 in
      let dest = Remote_ref.make ~machine:1 ~obj:0 in
      for i = 0 to 49 do
        match
          Node.call caller ~dest ~meth:m_incr ~callsite:100 ~has_ret:true
            [| box i |]
        with
        | Some (Value.Obj o) ->
            Alcotest.(check bool)
              (Printf.sprintf "call %d" i)
              true
              (o.fields.(0) = Value.Int (i + 1))
        | _ -> Alcotest.fail "bad reply"
      done)

let remote_exception_propagates () =
  let fabric = make_fabric () in
  export_all fabric;
  let caller = Fabric.node fabric 0 in
  let dest = Remote_ref.make ~machine:1 ~obj:0 in
  Alcotest.(check bool) "raises Remote_exception" true
    (try
       ignore (Node.call caller ~dest ~meth:m_boom ~callsite:1 ~has_ret:true [||]);
       false
     with Node.Remote_exception msg -> msg = "kaboom")

let unknown_method_reports () =
  (* an unknown (obj, method) pair must produce a clean remote error on
     the caller, not take down the serving machine *)
  List.iter
    (fun mode ->
      let fabric = make_fabric ~mode () in
      export_all fabric;
      Fabric.run fabric (fun fabric ->
          let caller = Fabric.node fabric 0 in
          let dest = Remote_ref.make ~machine:1 ~obj:9 in
          Alcotest.(check bool) "raises" true
            (try
               ignore
                 (Node.call caller ~dest ~meth:77 ~callsite:1 ~has_ret:true [||]);
               false
             with Node.Remote_exception _ -> true);
          (* the machine still serves afterwards *)
          let ok = Remote_ref.make ~machine:1 ~obj:0 in
          match
            Node.call caller ~dest:ok ~meth:m_incr ~callsite:1 ~has_ret:true
              [| box 1 |]
          with
          | Some (Value.Obj o) ->
              Alcotest.(check bool) "still alive" true
                (o.fields.(0) = Value.Int 2)
          | _ -> Alcotest.fail "machine died"))
    [ Fabric.Sync; Fabric.Parallel ]

let local_call_clones () =
  (* an RMI to an object on the same machine must still deep-copy *)
  let fabric = make_fabric () in
  let node0 = Fabric.node fabric 0 in
  let received = ref Value.Null in
  Node.export node0 ~obj:5 ~meth:m_void ~has_ret:false (fun args ->
      received := args.(0);
      (match args.(0) with
      | Value.Obj o -> o.fields.(0) <- Value.Int 999 (* mutate the copy *)
      | _ -> ());
      None);
  let mine = box 7 in
  let dest = Remote_ref.make ~machine:0 ~obj:5 in
  ignore (Node.call node0 ~dest ~meth:m_void ~callsite:2 ~has_ret:false [| mine |]);
  (* callee got an equal value... *)
  (match !received with
  | Value.Obj o ->
      Alcotest.(check bool) "callee saw 999 after its own mutation" true
        (o.fields.(0) = Value.Int 999)
  | _ -> Alcotest.fail "no value received");
  (* ...but the caller's object is untouched *)
  (match mine with
  | Value.Obj o -> Alcotest.(check bool) "caller untouched" true (o.fields.(0) = Value.Int 7)
  | _ -> assert false);
  let s = Metrics.snapshot (Fabric.metrics fabric) in
  Alcotest.(check int) "counted as local rpc" 1 s.Metrics.local_rpcs;
  Alcotest.(check int) "no remote rpcs" 0 s.Metrics.remote_rpcs;
  Alcotest.(check int) "no network messages" 0 s.Metrics.msgs_sent

let ack_only_when_return_ignored () =
  (* a site plan with ret = None must produce a smaller reply than a
     class-mode call that serializes the unused return value *)
  let bytes_with config plans =
    let fabric = make_fabric ~config ~plans () in
    export_all fabric;
    let caller = Fabric.node fabric 0 in
    let dest = Remote_ref.make ~machine:1 ~obj:0 in
    ignore
      (Node.call caller ~dest ~meth:m_incr ~callsite:7 ~has_ret:true [| box 1 |]);
    (Metrics.snapshot (Fabric.metrics fabric)).Metrics.bytes_sent
  in
  let plans = no_plans () in
  let site_plan =
    {
      (Plan.generic ~callsite:7 ~nargs:1 ~has_ret:false) with
      Plan.args = [| Plan.S_obj { cls = 1; fields = [| Plan.S_int |] } |];
      cycle_args = false;
      cycle_ret = false;
    }
  in
  Hashtbl.replace plans 7 site_plan;
  let class_bytes = bytes_with Config.class_ (no_plans ()) in
  let site_bytes = bytes_with Config.site_cycle plans in
  Alcotest.(check bool)
    (Printf.sprintf "site %d < class %d" site_bytes class_bytes)
    true (site_bytes < class_bytes)

let reuse_cache_on_callee () =
  (* repeated calls at one site with a reusable plan: after the first
     call, the callee allocates nothing *)
  let plans = no_plans () in
  let plan =
    {
      Plan.callsite = 9;
      defs = [||];
      args = [| Plan.S_double_array |];
      ret = Some Plan.S_double;
      cycle_args = false;
      cycle_ret = false;
      reuse_args = [| true |];
      reuse_ret = false;
      non_escaping = false;
      version = 1;
      polluted = false;
    }
  in
  Hashtbl.replace plans 9 plan;
  let fabric = make_fabric ~config:Config.site_reuse_cycle ~plans () in
  export_all fabric;
  let caller = Fabric.node fabric 0 in
  let dest = Remote_ref.make ~machine:1 ~obj:0 in
  let payload () =
    let a = Value.new_darr 100 in
    Array.iteri (fun i _ -> a.d.(i) <- float_of_int i) a.d;
    Value.Darr a
  in
  let call () =
    match Node.call caller ~dest ~meth:m_sum ~callsite:9 ~has_ret:true [| payload () |] with
    | Some (Value.Double d) -> d
    | _ -> Alcotest.fail "bad reply"
  in
  let first = call () in
  let s1 = Metrics.snapshot (Fabric.metrics fabric) in
  let second = call () in
  let third = call () in
  let s3 = Metrics.snapshot (Fabric.metrics fabric) in
  Alcotest.(check (float 1e-9)) "sum stable" first second;
  Alcotest.(check (float 1e-9)) "sum stable 2" first third;
  Alcotest.(check int) "first call allocated once" 1 s1.Metrics.allocs;
  Alcotest.(check int) "later calls reused" 2
    (Metrics.diff s3 s1).Metrics.reused_objs;
  Alcotest.(check int) "no further allocs" 0 (Metrics.diff s3 s1).Metrics.allocs

let nested_rmi_no_deadlock () =
  (* machine 0 calls machine 1 whose handler calls back into machine 0:
     the GM-style polling in await_reply must serve the nested request *)
  List.iter
    (fun mode ->
      let fabric = make_fabric ~mode ~n:2 () in
      let node0 = Fabric.node fabric 0 and node1 = Fabric.node fabric 1 in
      Node.export node0 ~obj:0 ~meth:m_incr ~has_ret:true (fun args ->
          match args.(0) with
          | Value.Obj o -> (
              match o.fields.(0) with
              | Value.Int v -> Some (box (v + 1))
              | _ -> failwith "bad box")
          | _ -> failwith "bad arg");
      Node.export node1 ~obj:0 ~meth:m_sum ~has_ret:true (fun args ->
          (* bounce back to machine 0 *)
          let dest = Remote_ref.make ~machine:0 ~obj:0 in
          match
            Node.call node1 ~dest ~meth:m_incr ~callsite:30 ~has_ret:true
              [| args.(0) |]
          with
          | Some v -> Some v
          | None -> failwith "no nested reply");
      Fabric.run fabric (fun fabric ->
          let caller = Fabric.node fabric 0 in
          let dest = Remote_ref.make ~machine:1 ~obj:0 in
          match
            Node.call caller ~dest ~meth:m_sum ~callsite:31 ~has_ret:true
              [| box 10 |]
          with
          | Some (Value.Obj o) ->
              Alcotest.(check bool) "nested result" true (o.fields.(0) = Value.Int 11)
          | _ -> Alcotest.fail "bad nested reply"))
    [ Fabric.Sync; Fabric.Parallel ]

let rpc_counters () =
  let fabric = make_fabric () in
  export_all fabric;
  let caller = Fabric.node fabric 0 in
  let remote = Remote_ref.make ~machine:1 ~obj:0 in
  let local = Remote_ref.make ~machine:0 ~obj:0 in
  for _ = 1 to 5 do
    ignore (Node.call caller ~dest:remote ~meth:m_void ~callsite:3 ~has_ret:false [| box 0 |])
  done;
  for _ = 1 to 3 do
    ignore (Node.call caller ~dest:local ~meth:m_void ~callsite:4 ~has_ret:false [| box 0 |])
  done;
  let s = Metrics.snapshot (Fabric.metrics fabric) in
  Alcotest.(check int) "remote rpcs" 5 s.Metrics.remote_rpcs;
  Alcotest.(check int) "local rpcs" 3 s.Metrics.local_rpcs;
  (* each remote rpc = request + reply message *)
  Alcotest.(check int) "messages" 10 s.Metrics.msgs_sent

let registry_round_robin () =
  let fabric = make_fabric ~n:3 () in
  let reg = Registry.create fabric in
  let spec =
    [ { Registry.meth = m_incr; has_ret = true;
        handler =
          (fun args ->
            match args.(0) with
            | Value.Obj o -> (
                match o.fields.(0) with
                | Value.Int v -> Some (box (v + 1))
                | _ -> failwith "bad box")
            | _ -> failwith "bad arg") } ]
  in
  let refs = List.init 6 (fun _ -> Registry.new_remote reg spec) in
  (* placement cycles over the machines, object ids are unique *)
  let machines = List.map (fun r -> r.Remote_ref.machine) refs in
  Alcotest.(check (list int)) "round robin" [ 0; 1; 2; 0; 1; 2 ] machines;
  let objs = List.map (fun r -> r.Remote_ref.obj) refs in
  Alcotest.(check (list int)) "unique ids" [ 0; 1; 2; 3; 4; 5 ] objs;
  Alcotest.(check int) "exported count" 6 (Registry.exported reg);
  (* every placed object is callable *)
  let caller = Fabric.node fabric 0 in
  List.iter
    (fun dest ->
      match Node.call caller ~dest ~meth:m_incr ~callsite:50 ~has_ret:true [| box 1 |] with
      | Some (Value.Obj o) ->
          Alcotest.(check bool) "answered" true (o.fields.(0) = Value.Int 2)
      | _ -> Alcotest.fail "no reply")
    refs;
  Alcotest.(check bool) "explicit placement" true
    ((Registry.new_remote_on reg ~machine:2 spec).Remote_ref.machine = 2)

let reset_caches_forgets_candidates () =
  (* after reset, the next call at a reuse-enabled site must allocate
     afresh instead of recycling *)
  let plans = no_plans () in
  let plan =
    {
      Plan.callsite = 21;
      defs = [||];
      args = [| Plan.S_double_array |];
      ret = None;
      cycle_args = false;
      cycle_ret = false;
      reuse_args = [| true |];
      reuse_ret = false;
      non_escaping = false;
      version = 1;
      polluted = false;
    }
  in
  Hashtbl.replace plans 21 plan;
  let fabric = make_fabric ~config:Config.site_reuse_cycle ~plans () in
  let callee = Fabric.node fabric 1 in
  Node.export callee ~obj:0 ~meth:m_void ~has_ret:false (fun _ -> None);
  let caller = Fabric.node fabric 0 in
  let payload () = Value.Darr (Value.new_darr 16) in
  let call () =
    ignore
      (Node.call caller
         ~dest:(Remote_ref.make ~machine:1 ~obj:0)
         ~meth:m_void ~callsite:21 ~has_ret:false [| payload () |])
  in
  call ();
  call ();
  let s1 = Metrics.snapshot (Fabric.metrics fabric) in
  Alcotest.(check int) "second call reused" 1 s1.Metrics.reused_objs;
  Node.reset_caches callee;
  call ();
  let s2 = Metrics.snapshot (Fabric.metrics fabric) in
  Alcotest.(check int) "post-reset call allocates" 0
    (Metrics.diff s2 s1).Metrics.reused_objs;
  Alcotest.(check int) "fresh allocation" 1 (Metrics.diff s2 s1).Metrics.allocs

let trace_records_events () =
  let fabric = make_fabric () in
  export_all fabric;
  let tr = Trace.create () in
  Node.set_trace (Fabric.node fabric 0) tr;
  Node.set_trace (Fabric.node fabric 1) tr;
  let caller = Fabric.node fabric 0 in
  let remote = Remote_ref.make ~machine:1 ~obj:0 in
  let local = Remote_ref.make ~machine:0 ~obj:0 in
  for _ = 1 to 3 do
    ignore (Node.call caller ~dest:remote ~meth:m_incr ~callsite:11 ~has_ret:true [| box 1 |])
  done;
  ignore (Node.call caller ~dest:local ~meth:m_incr ~callsite:12 ~has_ret:true [| box 1 |]);
  (* every call = start + future-created + future-resolved + end;
     plus 3 remote serves (the local path doesn't dispatch) *)
  Alcotest.(check int) "event count" 19 (Trace.length tr);
  let starts, ends, serves, created, resolved =
    List.fold_left
      (fun (s, e, v, c, d) (entry : Trace.entry) ->
        match entry.Trace.event with
        | Trace.Call_start _ -> (s + 1, e, v, c, d)
        | Trace.Call_end _ -> (s, e + 1, v, c, d)
        | Trace.Served _ -> (s, e, v + 1, c, d)
        | Trace.Future_created _ -> (s, e, v, c + 1, d)
        | Trace.Future_resolved _ -> (s, e, v, c, d + 1)
        | Trace.Retry _ | Trace.Timeout _ | Trace.Batch_flush _
        | Trace.Crash _ | Trace.Restart _ | Trace.Suspect _
        | Trace.Peer_down _ | Trace.Call_retry _ | Trace.Failover _
        | Trace.Breaker_open _ | Trace.Promote _ | Trace.Deopt _ ->
            (s, e, v, c, d))
      (0, 0, 0, 0, 0) (Trace.entries tr)
  in
  Alcotest.(check (list int)) "event breakdown" [ 4; 4; 3; 4; 4 ]
    [ starts; ends; serves; created; resolved ];
  (* timestamps are monotone in recording order *)
  let rec monotone = function
    | (a : Trace.entry) :: (b : Trace.entry) :: rest ->
        a.Trace.at_us <= b.Trace.at_us && monotone (b :: rest)
    | _ -> true
  in
  Alcotest.(check bool) "monotone timestamps" true (monotone (Trace.entries tr));
  (* rendering and summary mention the callsites *)
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "render has site 11" true
    (contains (Trace.render tr) "site=11");
  let summary = Trace.summary tr in
  Alcotest.(check bool) "summary has both sites" true
    (contains summary "11" && contains summary "12");
  Trace.clear tr;
  Alcotest.(check int) "cleared" 0 (Trace.length tr)

let suite =
  [
    ( "runtime.calls",
      [
        Alcotest.test_case "roundtrip under all 5 configs" `Quick
          call_roundtrip_all_configs;
        Alcotest.test_case "parallel (domains) mode" `Quick parallel_mode_roundtrip;
        Alcotest.test_case "remote exception" `Quick remote_exception_propagates;
        Alcotest.test_case "unknown method" `Quick unknown_method_reports;
        Alcotest.test_case "local call clones" `Quick local_call_clones;
        Alcotest.test_case "nested RMI no deadlock" `Quick nested_rmi_no_deadlock;
        Alcotest.test_case "rpc counters" `Quick rpc_counters;
      ] );
    ( "runtime.optimizations",
      [
        Alcotest.test_case "ack when return ignored" `Quick
          ack_only_when_return_ignored;
        Alcotest.test_case "callee reuse cache" `Quick reuse_cache_on_callee;
      ] );
    ( "runtime.registry",
      [ Alcotest.test_case "round-robin placement" `Quick registry_round_robin ] );
    ( "runtime.trace",
      [ Alcotest.test_case "events recorded" `Quick trace_records_events ] );
    ( "runtime.caches",
      [
        Alcotest.test_case "reset_caches forgets candidates" `Quick
          reset_caches_forgets_candidates;
      ] );
  ]
