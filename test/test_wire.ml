(* Unit and property tests for the wire substrate: buffers, varints,
   type descriptors, handle tables, message framing. *)

open Rmi_wire

let roundtrip_ints () =
  let w = Msgbuf.create_writer () in
  let values = [ 0; 1; -1; 63; 64; -64; 127; 128; 300; -300; max_int; min_int ] in
  List.iter (Msgbuf.write_varint w) values;
  let r = Msgbuf.reader_of_writer w in
  List.iter
    (fun v -> Alcotest.(check int) (Printf.sprintf "varint %d" v) v (Msgbuf.read_varint r))
    values;
  Alcotest.(check int) "drained" 0 (Msgbuf.remaining r)

let roundtrip_mixed () =
  let w = Msgbuf.create_writer ~initial_capacity:4 () in
  Msgbuf.write_u8 w 200;
  Msgbuf.write_bool w true;
  Msgbuf.write_bool w false;
  Msgbuf.write_double w 3.14159;
  Msgbuf.write_string w "hello RMI";
  Msgbuf.write_string w "";
  Msgbuf.write_uvarint w 123456;
  let r = Msgbuf.reader_of_writer w in
  Alcotest.(check int) "u8" 200 (Msgbuf.read_u8 r);
  Alcotest.(check bool) "true" true (Msgbuf.read_bool r);
  Alcotest.(check bool) "false" false (Msgbuf.read_bool r);
  Alcotest.(check (float 1e-12)) "double" 3.14159 (Msgbuf.read_double r);
  Alcotest.(check string) "string" "hello RMI" (Msgbuf.read_string r);
  Alcotest.(check string) "empty string" "" (Msgbuf.read_string r);
  Alcotest.(check int) "uvarint" 123456 (Msgbuf.read_uvarint r)

let double_slices () =
  let w = Msgbuf.create_writer () in
  let a = Array.init 37 (fun i -> float_of_int i *. 0.5) in
  Msgbuf.write_double_slice w a 0 37;
  Msgbuf.write_double_slice w a 10 5;
  let r = Msgbuf.reader_of_writer w in
  let b = Array.make 37 0.0 in
  Msgbuf.read_double_slice r b 0 37;
  Alcotest.(check bool) "full slice" true (a = b);
  let c = Array.make 5 0.0 in
  Msgbuf.read_double_slice r c 0 5;
  Alcotest.(check bool) "partial slice" true (Array.sub a 10 5 = c)

let underflow_raises () =
  let w = Msgbuf.create_writer () in
  Msgbuf.write_u8 w 7;
  let r = Msgbuf.reader_of_writer w in
  ignore (Msgbuf.read_u8 r);
  Alcotest.check_raises "underflow"
    (Msgbuf.Underflow "u8")
    (fun () -> ignore (Msgbuf.read_u8 r))

let bad_bool_raises () =
  let w = Msgbuf.create_writer () in
  Msgbuf.write_u8 w 9;
  let r = Msgbuf.reader_of_writer w in
  Alcotest.check_raises "bad bool"
    (Msgbuf.Underflow "bool: invalid byte 9")
    (fun () -> ignore (Msgbuf.read_bool r))

let clear_resets () =
  let w = Msgbuf.create_writer () in
  Msgbuf.write_string w "abc";
  Msgbuf.clear w;
  Alcotest.(check int) "cleared" 0 (Msgbuf.length w);
  Msgbuf.write_u8 w 1;
  Alcotest.(check int) "one byte" 1 (Msgbuf.length w)

let negative_uvarint_rejected () =
  let w = Msgbuf.create_writer () in
  Alcotest.check_raises "negative"
    (Invalid_argument "Msgbuf.write_uvarint: negative")
    (fun () -> Msgbuf.write_uvarint w (-1))

(* --- type descriptors --- *)

let typedesc_registry () =
  let reg = Typedesc.create () in
  let a = Typedesc.register reg "Foo" in
  let b = Typedesc.register reg "Bar" in
  let a' = Typedesc.register reg "Foo" in
  Alcotest.(check int) "idempotent" a a';
  Alcotest.(check bool) "distinct" true (a <> b);
  Alcotest.(check (option string)) "name back" (Some "Bar") (Typedesc.name_of_id reg b);
  Alcotest.(check (option int)) "id back" (Some a) (Typedesc.id_of_name reg "Foo");
  Alcotest.(check int) "cardinal" 2 (Typedesc.cardinal reg);
  Alcotest.(check (option string)) "unknown id" None (Typedesc.name_of_id reg 99)

let tag_roundtrip () =
  let tags =
    Typedesc.
      [
        Tag_null; Tag_bool; Tag_int; Tag_double; Tag_string; Tag_object 0;
        Tag_object 12345; Tag_obj_array 3; Tag_double_array; Tag_int_array;
        Tag_handle;
      ]
  in
  let w = Msgbuf.create_writer () in
  let sizes = List.map (Typedesc.write_tag w) tags in
  List.iter (fun s -> Alcotest.(check bool) "tag has bytes" true (s >= 1)) sizes;
  let r = Msgbuf.reader_of_writer w in
  List.iter
    (fun expect ->
      let got = Typedesc.read_tag r in
      Alcotest.(check string) "tag"
        (Format.asprintf "%a" Typedesc.pp_tag expect)
        (Format.asprintf "%a" Typedesc.pp_tag got))
    tags

(* --- handle tables --- *)

let handle_table_counts () =
  let m = Rmi_stats.Metrics.create () in
  let t = Handle_table.create ~metrics:m () in
  Alcotest.(check (option int)) "miss" None (Handle_table.lookup t 5);
  Handle_table.add t 5 41;
  Alcotest.(check (option int)) "hit" (Some 41) (Handle_table.lookup t 5);
  Alcotest.(check int) "handles dense" 1 (Handle_table.next_handle t);
  let s = Rmi_stats.Metrics.snapshot m in
  Alcotest.(check int) "3 probes charged" 3 s.Rmi_stats.Metrics.cycle_lookups;
  Handle_table.reset t;
  Alcotest.(check (option int)) "reset" None (Handle_table.lookup t 5)

(* --- protocol framing --- *)

let header_roundtrip () =
  let open Protocol in
  let cases =
    [
      { kind = Request; src = 0; epoch = 0; seq = 0; target_obj = 0; method_id = 0; callsite = -1; nargs = 0; plan_ver = 0 };
      { kind = Reply; src = 1; epoch = 0; seq = 42; target_obj = 7; method_id = 3; callsite = 12; nargs = 2; plan_ver = 0 };
      { kind = Ack; src = 3; epoch = 2; seq = 1000000; target_obj = -1; method_id = 255; callsite = 0; nargs = 7; plan_ver = 1 };
      { kind = Exn_reply; src = 2; epoch = 9; seq = 1; target_obj = 2; method_id = 3; callsite = 4; nargs = 1; plan_ver = 130 };
    ]
  in
  List.iter
    (fun h ->
      let w = Msgbuf.create_writer () in
      write_header w h;
      let r = Msgbuf.reader_of_writer w in
      let h' = read_header r in
      Alcotest.(check string) "header"
        (Format.asprintf "%a" pp_header h)
        (Format.asprintf "%a" pp_header h');
      Alcotest.(check int) "size" (Msgbuf.length w) (header_size h))
    cases

(* --- properties --- *)

let prop_varint_roundtrip =
  QCheck.Test.make ~name:"varint roundtrips any int" ~count:1000
    QCheck.int
    (fun v ->
      let w = Msgbuf.create_writer () in
      Msgbuf.write_varint w v;
      Msgbuf.read_varint (Msgbuf.reader_of_writer w) = v)

let prop_uvarint_roundtrip =
  QCheck.Test.make ~name:"uvarint roundtrips non-negative ints" ~count:1000
    QCheck.(map abs int)
    (fun v ->
      let w = Msgbuf.create_writer () in
      Msgbuf.write_uvarint w v;
      Msgbuf.read_uvarint (Msgbuf.reader_of_writer w) = v)

let prop_string_roundtrip =
  QCheck.Test.make ~name:"string roundtrips" ~count:500 QCheck.string
    (fun s ->
      let w = Msgbuf.create_writer () in
      Msgbuf.write_string w s;
      String.equal (Msgbuf.read_string (Msgbuf.reader_of_writer w)) s)

let prop_sequence_roundtrip =
  QCheck.Test.make ~name:"heterogeneous sequences roundtrip" ~count:300
    QCheck.(list (pair int (option string)))
    (fun items ->
      let w = Msgbuf.create_writer () in
      List.iter
        (fun (i, so) ->
          Msgbuf.write_varint w i;
          match so with
          | Some s ->
              Msgbuf.write_bool w true;
              Msgbuf.write_string w s
          | None -> Msgbuf.write_bool w false)
        items;
      let r = Msgbuf.reader_of_writer w in
      List.for_all
        (fun (i, so) ->
          let i' = Msgbuf.read_varint r in
          let so' =
            if Msgbuf.read_bool r then Some (Msgbuf.read_string r) else None
          in
          i = i' && so = so')
        items)

let prop_double_roundtrip =
  QCheck.Test.make ~name:"doubles roundtrip bit-exactly" ~count:500
    QCheck.float
    (fun f ->
      let w = Msgbuf.create_writer () in
      Msgbuf.write_double w f;
      let f' = Msgbuf.read_double (Msgbuf.reader_of_writer w) in
      Int64.equal (Int64.bits_of_float f) (Int64.bits_of_float f'))

(* --- zigzag extremes and truncation --- *)

let zigzag_extremes () =
  (* zigzag must cover the full int range without overflow artifacts:
     min_int maps to the largest unsigned code point *)
  List.iter
    (fun v ->
      let w = Msgbuf.create_writer () in
      Msgbuf.write_varint w v;
      Alcotest.(check int)
        (Printf.sprintf "varint %d" v)
        v
        (Msgbuf.read_varint (Msgbuf.reader_of_writer w)))
    [ max_int; min_int; max_int - 1; min_int + 1; max_int / 2; min_int / 2 ];
  let w = Msgbuf.create_writer () in
  Msgbuf.write_uvarint w max_int;
  Alcotest.(check int) "uvarint max_int" max_int
    (Msgbuf.read_uvarint (Msgbuf.reader_of_writer w))

let truncated_varint_underflows () =
  let w = Msgbuf.create_writer () in
  Msgbuf.write_varint w min_int;
  (* a 10-byte encoding *)
  let full = Msgbuf.contents w in
  for len = 0 to Bytes.length full - 1 do
    let r = Msgbuf.reader_of_bytes ~len full in
    Alcotest.(check bool)
      (Printf.sprintf "truncated at %d" len)
      true
      (try
         ignore (Msgbuf.read_varint r : int);
         false
       with Msgbuf.Underflow _ -> true)
  done

(* --- offset readers and skip --- *)

let reader_slices () =
  let w = Msgbuf.create_writer () in
  Msgbuf.write_u8 w 1;
  Msgbuf.write_u8 w 2;
  Msgbuf.write_u8 w 3;
  Msgbuf.write_u8 w 4;
  let data = Msgbuf.contents w in
  let r = Msgbuf.reader_of_bytes ~off:1 ~len:2 data in
  Alcotest.(check int) "slice remaining" 2 (Msgbuf.remaining r);
  Alcotest.(check int) "first in slice" 2 (Msgbuf.read_u8 r);
  Alcotest.(check int) "second in slice" 3 (Msgbuf.read_u8 r);
  Alcotest.check_raises "slice end enforced" (Msgbuf.Underflow "u8") (fun () ->
      ignore (Msgbuf.read_u8 r));
  let r = Msgbuf.reader_of_bytes data in
  let off = Msgbuf.skip r 3 "prefix" in
  Alcotest.(check int) "skip returns start offset" 0 off;
  Alcotest.(check int) "skip advances" 4 (Msgbuf.read_u8 r);
  Alcotest.check_raises "skip past end" (Msgbuf.Underflow "tail") (fun () ->
      ignore (Msgbuf.skip r 1 "tail"))

(* --- reserve / patch --- *)

let reserve_and_patch () =
  let w = Msgbuf.create_writer () in
  Msgbuf.write_u8 w 0xAA;
  let at = Msgbuf.reserve w 3 in
  Alcotest.(check int) "reserve offset" 1 at;
  Msgbuf.write_u8 w 0xBB;
  Msgbuf.patch_u8 w ~at 7;
  let width = Msgbuf.patch_uvarint w ~at:(at + 1) 300 in
  Alcotest.(check int) "patched varint minimal" (Msgbuf.uvarint_size 300) width;
  let r = Msgbuf.reader_of_writer w in
  Alcotest.(check int) "prefix intact" 0xAA (Msgbuf.read_u8 r);
  Alcotest.(check int) "patched u8" 7 (Msgbuf.read_u8 r);
  Alcotest.(check int) "patched uvarint" 300 (Msgbuf.read_uvarint r);
  Alcotest.(check int) "suffix intact" 0xBB (Msgbuf.read_u8 r)

let uvarint_size_matches_encoding () =
  List.iter
    (fun v ->
      let w = Msgbuf.create_writer () in
      Msgbuf.write_uvarint w v;
      Alcotest.(check int)
        (Printf.sprintf "size of %d" v)
        (Msgbuf.length w) (Msgbuf.uvarint_size v))
    [ 0; 1; 127; 128; 16383; 16384; 300; 123456; max_int ]

(* --- buffer pool --- *)

let pool_reuses_writers () =
  let m = Rmi_stats.Metrics.create () in
  let p = Msgbuf.Pool.create ~metrics:m in
  let w1 = Msgbuf.Pool.acquire_writer p in
  Msgbuf.write_string w1 "prime the storage";
  Msgbuf.Pool.release_writer p w1;
  let w2 = Msgbuf.Pool.acquire_writer p in
  Alcotest.(check bool) "same writer object" true (w1 == w2);
  Alcotest.(check int) "recycled writer is cleared" 0 (Msgbuf.length w2);
  let s = Rmi_stats.Metrics.snapshot m in
  Alcotest.(check int) "one miss (first acquire)" 1 s.Rmi_stats.Metrics.pool_misses;
  Alcotest.(check int) "one hit (recycled)" 1 s.Rmi_stats.Metrics.pool_hits

let pool_with_writer_releases_on_raise () =
  let m = Rmi_stats.Metrics.create () in
  let p = Msgbuf.Pool.create ~metrics:m in
  let leaked = ref None in
  (try
     Msgbuf.Pool.with_writer p (fun w ->
         leaked := Some w;
         failwith "boom")
   with Failure _ -> ());
  let w = Msgbuf.Pool.acquire_writer p in
  match !leaked with
  | Some lw ->
      Alcotest.(check bool) "writer back in pool after raise" true (w == lw)
  | None -> Alcotest.fail "with_writer never ran"

let pool_readers () =
  let m = Rmi_stats.Metrics.create () in
  let p = Msgbuf.Pool.create ~metrics:m in
  let data = Bytes.of_string "\x05\x06\x07" in
  let r1 = Msgbuf.Pool.acquire_reader p ~off:1 ~len:2 data in
  Alcotest.(check int) "aimed at slice" 6 (Msgbuf.read_u8 r1);
  Msgbuf.Pool.release_reader p r1;
  let r2 = Msgbuf.Pool.acquire_reader p data in
  Alcotest.(check bool) "reader recycled" true (r1 == r2);
  Alcotest.(check int) "re-aimed at start" 5 (Msgbuf.read_u8 r2)

(* --- zero-copy framing == copy framing, property-style --- *)

module Envelope = Rmi_net.Envelope

let envelope_kind_gen =
  QCheck.Gen.oneofl [ Envelope.Data; Envelope.Ack; Envelope.Hb ]

(* the headline substitution property: an envelope built in place
   around a reserved gap is byte-for-byte the frame the copying encoder
   produces, for any payload and any header values *)
let prop_encode_around_equals_encode =
  QCheck.Test.make ~name:"Envelope.encode_around == Envelope.encode" ~count:500
    QCheck.(
      make
        Gen.(
          quad envelope_kind_gen (int_bound 15) (int_bound 5)
            (pair (int_bound 1_000_000) string)))
    (fun (kind, src, epoch, (lseq, payload_s)) ->
      let payload = Bytes.of_string payload_s in
      let legacy = Envelope.encode ~kind ~src ~epoch ~lseq ~payload () in
      let w = Msgbuf.create_writer () in
      ignore (Msgbuf.reserve w Envelope.gap : int);
      Msgbuf.write_bytes w payload 0 (Bytes.length payload);
      let start =
        Envelope.encode_around w ~kind ~src ~epoch ~lseq
          ~payload_off:Envelope.gap ()
      in
      let zc = Msgbuf.sub w ~off:start ~len:(Msgbuf.length w - start) in
      Bytes.equal legacy zc)

let prop_encode_around_decodes =
  QCheck.Test.make ~name:"encode_around frames decode to their payload"
    ~count:200
    QCheck.(pair (int_bound 1_000_000) string)
    (fun (lseq, payload_s) ->
      let payload = Bytes.of_string payload_s in
      let w = Msgbuf.create_writer () in
      ignore (Msgbuf.reserve w Envelope.gap : int);
      Msgbuf.write_bytes w payload 0 (Bytes.length payload);
      let start =
        Envelope.encode_around w ~kind:Envelope.Data ~src:1 ~lseq
          ~payload_off:Envelope.gap ()
      in
      let frame = Msgbuf.sub w ~off:start ~len:(Msgbuf.length w - start) in
      match Envelope.decode frame with
      | Some (h, p) ->
          h.Envelope.kind = Envelope.Data
          && h.Envelope.lseq = lseq
          && Bytes.equal p payload
      | None -> false)

let encode_around_rejects_small_gap () =
  let w = Msgbuf.create_writer () in
  ignore (Msgbuf.reserve w 2 : int);
  Msgbuf.write_u8 w 9;
  Alcotest.(check bool) "raises Invalid_argument" true
    (try
       ignore
         (Envelope.encode_around w ~kind:Envelope.Data ~src:0 ~lseq:0
            ~payload_off:2 ()
           : int);
       false
     with Invalid_argument _ -> true)

let prop_batch_into_equals_batch =
  QCheck.Test.make ~name:"Protocol.encode_batch_into == encode_batch"
    ~count:300
    QCheck.(list_of_size Gen.(int_range 1 8) string)
    (fun msgs_s ->
      let msgs = List.map Bytes.of_string msgs_s in
      let legacy = Protocol.encode_batch msgs in
      let w = Msgbuf.create_writer () in
      (* an unrelated prefix proves the append is position-independent *)
      Msgbuf.write_u8 w 0xEE;
      Protocol.encode_batch_into w msgs;
      let zc = Msgbuf.sub w ~off:1 ~len:(Msgbuf.length w - 1) in
      Bytes.equal legacy zc)

let suite =
  [
    ( "wire.msgbuf",
      [
        Alcotest.test_case "varint corner cases" `Quick roundtrip_ints;
        Alcotest.test_case "mixed primitives" `Quick roundtrip_mixed;
        Alcotest.test_case "double slices" `Quick double_slices;
        Alcotest.test_case "underflow raises" `Quick underflow_raises;
        Alcotest.test_case "bad bool raises" `Quick bad_bool_raises;
        Alcotest.test_case "clear resets" `Quick clear_resets;
        Alcotest.test_case "negative uvarint rejected" `Quick negative_uvarint_rejected;
        Alcotest.test_case "zigzag extremes" `Quick zigzag_extremes;
        Alcotest.test_case "truncated varint underflows" `Quick
          truncated_varint_underflows;
        Alcotest.test_case "offset readers and skip" `Quick reader_slices;
        Alcotest.test_case "reserve and patch" `Quick reserve_and_patch;
        Alcotest.test_case "uvarint_size matches encoding" `Quick
          uvarint_size_matches_encoding;
        Fixtures.qcheck_case prop_varint_roundtrip;
        Fixtures.qcheck_case prop_uvarint_roundtrip;
        Fixtures.qcheck_case prop_string_roundtrip;
        Fixtures.qcheck_case prop_sequence_roundtrip;
        Fixtures.qcheck_case prop_double_roundtrip;
      ] );
    ( "wire.typedesc",
      [
        Alcotest.test_case "registry" `Quick typedesc_registry;
        Alcotest.test_case "tag roundtrip" `Quick tag_roundtrip;
      ] );
    ( "wire.pool",
      [
        Alcotest.test_case "writers recycled and counted" `Quick
          pool_reuses_writers;
        Alcotest.test_case "with_writer releases on raise" `Quick
          pool_with_writer_releases_on_raise;
        Alcotest.test_case "readers recycled and re-aimed" `Quick pool_readers;
      ] );
    ( "wire.zero_copy",
      [
        Fixtures.qcheck_case prop_encode_around_equals_encode;
        Fixtures.qcheck_case prop_encode_around_decodes;
        Alcotest.test_case "encode_around rejects small gap" `Quick
          encode_around_rejects_small_gap;
        Fixtures.qcheck_case prop_batch_into_equals_batch;
      ] );
    ( "wire.handle_table",
      [ Alcotest.test_case "lookups counted" `Quick handle_table_counts ] );
    ( "wire.protocol",
      [ Alcotest.test_case "header roundtrip" `Quick header_roundtrip ] );
  ]
