(* Unit and property tests for the wire substrate: buffers, varints,
   type descriptors, handle tables, message framing. *)

open Rmi_wire

let roundtrip_ints () =
  let w = Msgbuf.create_writer () in
  let values = [ 0; 1; -1; 63; 64; -64; 127; 128; 300; -300; max_int; min_int ] in
  List.iter (Msgbuf.write_varint w) values;
  let r = Msgbuf.reader_of_writer w in
  List.iter
    (fun v -> Alcotest.(check int) (Printf.sprintf "varint %d" v) v (Msgbuf.read_varint r))
    values;
  Alcotest.(check int) "drained" 0 (Msgbuf.remaining r)

let roundtrip_mixed () =
  let w = Msgbuf.create_writer ~initial_capacity:4 () in
  Msgbuf.write_u8 w 200;
  Msgbuf.write_bool w true;
  Msgbuf.write_bool w false;
  Msgbuf.write_double w 3.14159;
  Msgbuf.write_string w "hello RMI";
  Msgbuf.write_string w "";
  Msgbuf.write_uvarint w 123456;
  let r = Msgbuf.reader_of_writer w in
  Alcotest.(check int) "u8" 200 (Msgbuf.read_u8 r);
  Alcotest.(check bool) "true" true (Msgbuf.read_bool r);
  Alcotest.(check bool) "false" false (Msgbuf.read_bool r);
  Alcotest.(check (float 1e-12)) "double" 3.14159 (Msgbuf.read_double r);
  Alcotest.(check string) "string" "hello RMI" (Msgbuf.read_string r);
  Alcotest.(check string) "empty string" "" (Msgbuf.read_string r);
  Alcotest.(check int) "uvarint" 123456 (Msgbuf.read_uvarint r)

let double_slices () =
  let w = Msgbuf.create_writer () in
  let a = Array.init 37 (fun i -> float_of_int i *. 0.5) in
  Msgbuf.write_double_slice w a 0 37;
  Msgbuf.write_double_slice w a 10 5;
  let r = Msgbuf.reader_of_writer w in
  let b = Array.make 37 0.0 in
  Msgbuf.read_double_slice r b 0 37;
  Alcotest.(check bool) "full slice" true (a = b);
  let c = Array.make 5 0.0 in
  Msgbuf.read_double_slice r c 0 5;
  Alcotest.(check bool) "partial slice" true (Array.sub a 10 5 = c)

let underflow_raises () =
  let w = Msgbuf.create_writer () in
  Msgbuf.write_u8 w 7;
  let r = Msgbuf.reader_of_writer w in
  ignore (Msgbuf.read_u8 r);
  Alcotest.check_raises "underflow"
    (Msgbuf.Underflow "u8")
    (fun () -> ignore (Msgbuf.read_u8 r))

let bad_bool_raises () =
  let w = Msgbuf.create_writer () in
  Msgbuf.write_u8 w 9;
  let r = Msgbuf.reader_of_writer w in
  Alcotest.check_raises "bad bool"
    (Msgbuf.Underflow "bool: invalid byte 9")
    (fun () -> ignore (Msgbuf.read_bool r))

let clear_resets () =
  let w = Msgbuf.create_writer () in
  Msgbuf.write_string w "abc";
  Msgbuf.clear w;
  Alcotest.(check int) "cleared" 0 (Msgbuf.length w);
  Msgbuf.write_u8 w 1;
  Alcotest.(check int) "one byte" 1 (Msgbuf.length w)

let negative_uvarint_rejected () =
  let w = Msgbuf.create_writer () in
  Alcotest.check_raises "negative"
    (Invalid_argument "Msgbuf.write_uvarint: negative")
    (fun () -> Msgbuf.write_uvarint w (-1))

(* --- type descriptors --- *)

let typedesc_registry () =
  let reg = Typedesc.create () in
  let a = Typedesc.register reg "Foo" in
  let b = Typedesc.register reg "Bar" in
  let a' = Typedesc.register reg "Foo" in
  Alcotest.(check int) "idempotent" a a';
  Alcotest.(check bool) "distinct" true (a <> b);
  Alcotest.(check (option string)) "name back" (Some "Bar") (Typedesc.name_of_id reg b);
  Alcotest.(check (option int)) "id back" (Some a) (Typedesc.id_of_name reg "Foo");
  Alcotest.(check int) "cardinal" 2 (Typedesc.cardinal reg);
  Alcotest.(check (option string)) "unknown id" None (Typedesc.name_of_id reg 99)

let tag_roundtrip () =
  let tags =
    Typedesc.
      [
        Tag_null; Tag_bool; Tag_int; Tag_double; Tag_string; Tag_object 0;
        Tag_object 12345; Tag_obj_array 3; Tag_double_array; Tag_int_array;
        Tag_handle;
      ]
  in
  let w = Msgbuf.create_writer () in
  let sizes = List.map (Typedesc.write_tag w) tags in
  List.iter (fun s -> Alcotest.(check bool) "tag has bytes" true (s >= 1)) sizes;
  let r = Msgbuf.reader_of_writer w in
  List.iter
    (fun expect ->
      let got = Typedesc.read_tag r in
      Alcotest.(check string) "tag"
        (Format.asprintf "%a" Typedesc.pp_tag expect)
        (Format.asprintf "%a" Typedesc.pp_tag got))
    tags

(* --- handle tables --- *)

let handle_table_counts () =
  let m = Rmi_stats.Metrics.create () in
  let t = Handle_table.create ~metrics:m () in
  Alcotest.(check (option int)) "miss" None (Handle_table.lookup t 5);
  Handle_table.add t 5 41;
  Alcotest.(check (option int)) "hit" (Some 41) (Handle_table.lookup t 5);
  Alcotest.(check int) "handles dense" 1 (Handle_table.next_handle t);
  let s = Rmi_stats.Metrics.snapshot m in
  Alcotest.(check int) "3 probes charged" 3 s.Rmi_stats.Metrics.cycle_lookups;
  Handle_table.reset t;
  Alcotest.(check (option int)) "reset" None (Handle_table.lookup t 5)

(* --- protocol framing --- *)

let header_roundtrip () =
  let open Protocol in
  let cases =
    [
      { kind = Request; src = 0; epoch = 0; seq = 0; target_obj = 0; method_id = 0; callsite = -1; nargs = 0; plan_ver = 0 };
      { kind = Reply; src = 1; epoch = 0; seq = 42; target_obj = 7; method_id = 3; callsite = 12; nargs = 2; plan_ver = 0 };
      { kind = Ack; src = 3; epoch = 2; seq = 1000000; target_obj = -1; method_id = 255; callsite = 0; nargs = 7; plan_ver = 1 };
      { kind = Exn_reply; src = 2; epoch = 9; seq = 1; target_obj = 2; method_id = 3; callsite = 4; nargs = 1; plan_ver = 130 };
    ]
  in
  List.iter
    (fun h ->
      let w = Msgbuf.create_writer () in
      write_header w h;
      let r = Msgbuf.reader_of_writer w in
      let h' = read_header r in
      Alcotest.(check string) "header"
        (Format.asprintf "%a" pp_header h)
        (Format.asprintf "%a" pp_header h');
      Alcotest.(check int) "size" (Msgbuf.length w) (header_size h))
    cases

(* --- properties --- *)

let prop_varint_roundtrip =
  QCheck.Test.make ~name:"varint roundtrips any int" ~count:1000
    QCheck.int
    (fun v ->
      let w = Msgbuf.create_writer () in
      Msgbuf.write_varint w v;
      Msgbuf.read_varint (Msgbuf.reader_of_writer w) = v)

let prop_uvarint_roundtrip =
  QCheck.Test.make ~name:"uvarint roundtrips non-negative ints" ~count:1000
    QCheck.(map abs int)
    (fun v ->
      let w = Msgbuf.create_writer () in
      Msgbuf.write_uvarint w v;
      Msgbuf.read_uvarint (Msgbuf.reader_of_writer w) = v)

let prop_string_roundtrip =
  QCheck.Test.make ~name:"string roundtrips" ~count:500 QCheck.string
    (fun s ->
      let w = Msgbuf.create_writer () in
      Msgbuf.write_string w s;
      String.equal (Msgbuf.read_string (Msgbuf.reader_of_writer w)) s)

let prop_sequence_roundtrip =
  QCheck.Test.make ~name:"heterogeneous sequences roundtrip" ~count:300
    QCheck.(list (pair int (option string)))
    (fun items ->
      let w = Msgbuf.create_writer () in
      List.iter
        (fun (i, so) ->
          Msgbuf.write_varint w i;
          match so with
          | Some s ->
              Msgbuf.write_bool w true;
              Msgbuf.write_string w s
          | None -> Msgbuf.write_bool w false)
        items;
      let r = Msgbuf.reader_of_writer w in
      List.for_all
        (fun (i, so) ->
          let i' = Msgbuf.read_varint r in
          let so' =
            if Msgbuf.read_bool r then Some (Msgbuf.read_string r) else None
          in
          i = i' && so = so')
        items)

let prop_double_roundtrip =
  QCheck.Test.make ~name:"doubles roundtrip bit-exactly" ~count:500
    QCheck.float
    (fun f ->
      let w = Msgbuf.create_writer () in
      Msgbuf.write_double w f;
      let f' = Msgbuf.read_double (Msgbuf.reader_of_writer w) in
      Int64.equal (Int64.bits_of_float f) (Int64.bits_of_float f'))

let suite =
  [
    ( "wire.msgbuf",
      [
        Alcotest.test_case "varint corner cases" `Quick roundtrip_ints;
        Alcotest.test_case "mixed primitives" `Quick roundtrip_mixed;
        Alcotest.test_case "double slices" `Quick double_slices;
        Alcotest.test_case "underflow raises" `Quick underflow_raises;
        Alcotest.test_case "bad bool raises" `Quick bad_bool_raises;
        Alcotest.test_case "clear resets" `Quick clear_resets;
        Alcotest.test_case "negative uvarint rejected" `Quick negative_uvarint_rejected;
        QCheck_alcotest.to_alcotest prop_varint_roundtrip;
        QCheck_alcotest.to_alcotest prop_uvarint_roundtrip;
        QCheck_alcotest.to_alcotest prop_string_roundtrip;
        QCheck_alcotest.to_alcotest prop_sequence_roundtrip;
        QCheck_alcotest.to_alcotest prop_double_roundtrip;
      ] );
    ( "wire.typedesc",
      [
        Alcotest.test_case "registry" `Quick typedesc_registry;
        Alcotest.test_case "tag roundtrip" `Quick tag_roundtrip;
      ] );
    ( "wire.handle_table",
      [ Alcotest.test_case "lookups counted" `Quick handle_table_counts ] );
    ( "wire.protocol",
      [ Alcotest.test_case "header roundtrip" `Quick header_roundtrip ] );
  ]
