(* Whole-program distributed execution: JIR programs (written in the
   surface syntax) run with their remote method bodies interpreted on
   the owning machines and their RMIs carried by the real runtime.

   The built-in interpreter simulation of RMI is the oracle: for every
   program and every optimization configuration the observable result
   must agree. *)

module I = Jir.Interp
module D = Rmi_runtime.Distributed
module Config = Rmi_runtime.Config
module Fabric = Rmi_runtime.Fabric

let pure_result source entry args =
  let prog = Jfront.Lower.compile source in
  let mid = Jfront.Lower.method_named prog entry in
  I.run (I.create prog) mid args

let distributed_result ?config ?mode ?machines source entry args =
  let prog = Jfront.Lower.compile source in
  let mid = Jfront.Lower.method_named prog entry in
  D.run ?config ?mode ?machines prog ~entry:mid args

let check_all_configs ?(machines = 2) name source entry args =
  let oracle = pure_result source entry args in
  List.iter
    (fun config ->
      let r = distributed_result ~config ~machines source entry args in
      Alcotest.(check bool)
        (Printf.sprintf "%s [%s]: %s = %s" name config.Config.name
           (Format.asprintf "%a" I.pp_value r.D.value)
           (Format.asprintf "%a" I.pp_value oracle))
        true
        (I.value_equal oracle r.D.value))
    Config.all

(* 1. arithmetic through one remote service *)
let scale_source =
  {|
  class Vec { double[] xs; }
  remote class MathService {
    double total(Vec v, int scale) {
      double t = 0.0;
      for (int i = 0; i < v.xs.length; i++) { t = t + v.xs[i]; }
      double s = 0.0;
      int k = 0;
      while (k < scale) { s = s + t; k = k + 1; }
      return s;
    }
  }
  class Driver {
    static double main() {
      Vec v = new Vec();
      v.xs = new double[5];
      for (int i = 0; i < 5; i++) { v.xs[i] = 1.5; }
      MathService m = new MathService();
      double acc = 0.0;
      for (int r = 0; r < 4; r++) { acc = acc + m.total(v, 3); }
      return acc;
    }
  }
  |}

let scale_service () = check_all_configs "scale" scale_source "Driver.main" []

(* 2. objects returned across the wire and read by the caller *)
let roundtrip_source =
  {|
  class Pair { int a; int b; }
  remote class Swapper {
    Pair swap(Pair p) {
      Pair q = new Pair();
      q.a = p.b;
      q.b = p.a;
      return q;
    }
  }
  class Driver {
    static int main() {
      Pair p = new Pair();
      p.a = 7; p.b = 35;
      Swapper s = new Swapper();
      Pair q = s.swap(s.swap(p));
      // two swaps = identity; deep copies must not alias p
      q.a = q.a + 0;
      return q.a * 100 + q.b + p.a;
    }
  }
  |}

let swap_roundtrip () = check_all_configs "swap" roundtrip_source "Driver.main" []

(* 3. deep-copy semantics observable from the caller: the remote mutation
   must not show through *)
let isolation_source =
  {|
  class Box { int v; }
  remote class Mutator {
    void smash(Box b) { b.v = 999; }
  }
  class Driver {
    static int main() {
      Box b = new Box();
      b.v = 5;
      Mutator m = new Mutator();
      m.smash(b);
      return b.v;
    }
  }
  |}

let copy_isolation () =
  check_all_configs "isolation" isolation_source "Driver.main" [];
  (* and the value is what RMI semantics dictate *)
  match pure_result isolation_source "Driver.main" [] with
  | I.Vint 5 -> ()
  | v -> Alcotest.failf "oracle wrong: %a" I.pp_value v

(* 4. nested RMI: a remote method invoking another remote object *)
let nested_source =
  {|
  remote class Leaf {
    int triple(int x) { return x * 3; }
  }
  remote class Branch {
    int compute(int x) {
      Leaf l = new Leaf();
      return l.triple(x) + 1;
    }
  }
  class Driver {
    static int main() {
      Branch b = new Branch();
      return b.compute(13) + b.compute(0);
    }
  }
  |}

let nested_rmi () = check_all_configs "nested" nested_source "Driver.main" []

(* 5. several remote instances: placement spreads them round-robin *)
let placement_source =
  {|
  remote class Worker {
    int id(int x) { return x; }
  }
  class Driver {
    static int main() {
      int acc = 0;
      for (int i = 0; i < 6; i++) {
        Worker w = new Worker();
        acc = acc + w.id(i);
      }
      return acc;
    }
  }
  |}

let placement_round_robin () =
  check_all_configs ~machines:3 "placement" placement_source "Driver.main" [];
  let r =
    distributed_result ~machines:3 placement_source "Driver.main" []
  in
  Alcotest.(check int) "six remote objects placed" 6 r.D.remote_objects;
  (* calls went both local and remote *)
  Alcotest.(check bool) "some remote rpcs" true (r.D.stats.Rmi_stats.Metrics.remote_rpcs > 0);
  Alcotest.(check bool) "some local rpcs" true (r.D.stats.Rmi_stats.Metrics.local_rpcs > 0)

let parallel_spot () =
  let oracle = pure_result scale_source "Driver.main" [] in
  let r =
    distributed_result ~mode:Fabric.Parallel scale_source "Driver.main" []
  in
  Alcotest.(check bool) "parallel matches" true (I.value_equal oracle r.D.value)

let optimizations_fire () =
  (* the distributed run of the scale program must show the compiler's
     optimizations in the counters: no cycle lookups, reuse > 0 *)
  let r =
    distributed_result ~config:Config.site_reuse_cycle scale_source
      "Driver.main" []
  in
  Alcotest.(check int) "no cycle lookups" 0 r.D.stats.Rmi_stats.Metrics.cycle_lookups;
  Alcotest.(check bool) "arguments reused" true
    (r.D.stats.Rmi_stats.Metrics.reused_objs > 0);
  let r_class =
    distributed_result ~config:Config.class_ scale_source "Driver.main" []
  in
  Alcotest.(check bool) "class pays type bytes" true
    (r_class.D.stats.Rmi_stats.Metrics.type_bytes
     > r.D.stats.Rmi_stats.Metrics.type_bytes)

(* --- the interp<->runtime value bridge ----------------------------- *)

let bridge_roundtrips_cycles () =
  let open Jir.Interp in
  (* cyclic, shared structure: a -> b -> a with a shared int array *)
  let arr = { aelem = Jir.Types.Tint; adata = [| Vint 1; Vint 2 |]; aid = 1; asite = 0 } in
  let a = { ocls = 0; ofields = [| Vnull; Varr arr |]; oid = 2; osite = 1 } in
  let b = { ocls = 0; ofields = [| Vobj a; Varr arr |]; oid = 3; osite = 2 } in
  a.ofields.(0) <- Vobj b;
  let v = Vobj a in
  let rt = Rmi_runtime.Jir_bridge.to_runtime v in
  let back = Rmi_runtime.Jir_bridge.of_runtime rt in
  Alcotest.(check bool) "roundtrip equal" true (value_equal v back);
  (* the cycle survived in the runtime representation too *)
  (match rt with
  | Rmi_serial.Value.Obj o -> (
      match o.Rmi_serial.Value.fields.(0) with
      | Rmi_serial.Value.Obj o' -> (
          match o'.Rmi_serial.Value.fields.(0) with
          | Rmi_serial.Value.Obj o'' ->
              Alcotest.(check bool) "cycle closed" true (o'' == o)
          | _ -> Alcotest.fail "no cycle")
      | _ -> Alcotest.fail "no b")
  | _ -> Alcotest.fail "not an object");
  (* int arrays map to the unboxed runtime form *)
  match rt with
  | Rmi_serial.Value.Obj o -> (
      match o.Rmi_serial.Value.fields.(1) with
      | Rmi_serial.Value.Iarr ia ->
          Alcotest.(check bool) "unboxed ints" true (ia.Rmi_serial.Value.ia = [| 1; 2 |])
      | _ -> Alcotest.fail "expected Iarr")
  | _ -> assert false

let prop_bridge_roundtrip =
  (* reuse the serializer test generator shapes indirectly: build random
     interp values from the soundness program runs *)
  QCheck.Test.make ~name:"bridge roundtrips executed heaps" ~count:60
    Test_soundness.arb_program
    (fun stmts ->
      let built = Test_soundness.build stmts in
      let st = I.create ~step_limit:200_000 built.Test_soundness.prog in
      (try ignore (I.run st built.Test_soundness.main [ I.Vbool true ])
       with I.Runtime_error _ | I.Step_limit_exceeded -> ());
      Array.for_all
        (fun i ->
          let v = I.read_static st i in
          I.value_equal v
            (Rmi_runtime.Jir_bridge.of_runtime
               (Rmi_runtime.Jir_bridge.to_runtime v)))
        (Array.init (Array.length built.Test_soundness.prog.Jir.Program.statics)
           Fun.id))

(* --- the big differential property: random well-typed programs, pure
   interpreter vs distributed execution; the return-fault behaviour and
   the caller's observable statics must agree ----------------------- *)

let prop_distributed_matches_interpreter =
  QCheck.Test.make
    ~name:"distributed execution = interpreter simulation (random programs)"
    ~count:60 Test_soundness.arb_program
    (fun stmts ->
      let b1 = Test_soundness.build stmts in
      let pure_st = I.create ~step_limit:200_000 b1.Test_soundness.prog in
      let pure_fault =
        try
          ignore (I.run pure_st b1.Test_soundness.main [ I.Vbool true ]);
          false
        with I.Runtime_error _ | I.Step_limit_exceeded -> true
      in
      QCheck.assume (not pure_fault);
      let b2 = Test_soundness.build stmts in
      match
        D.run ~config:Config.site_reuse_cycle ~mode:Fabric.Sync
          b2.Test_soundness.prog ~entry:b2.Test_soundness.main
          [ I.Vbool true ]
      with
      | r ->
          (* every observable static graph must match the oracle *)
          Array.for_all
            (fun i ->
              I.value_equal (I.read_static pure_st i) r.D.statics.(i))
            (Array.init (Array.length r.D.statics) Fun.id)
      | exception
          ( Rmi_runtime.Node.Remote_exception _ | I.Runtime_error _
          | I.Step_limit_exceeded | Failure _ ) ->
          false)

let suite =
  [
    ( "distributed.execution",
      [
        Alcotest.test_case "scale service, all configs" `Quick scale_service;
        Alcotest.test_case "swap roundtrip, all configs" `Quick swap_roundtrip;
        Alcotest.test_case "deep-copy isolation" `Quick copy_isolation;
        Alcotest.test_case "nested RMI" `Quick nested_rmi;
        Alcotest.test_case "round-robin placement" `Quick placement_round_robin;
        Alcotest.test_case "parallel mode" `Quick parallel_spot;
        Alcotest.test_case "optimizations fire" `Quick optimizations_fire;
        Fixtures.qcheck_case prop_distributed_matches_interpreter;
      ] );
    ( "distributed.bridge",
      [
        Alcotest.test_case "cycles and sharing" `Quick bridge_roundtrips_cycles;
        Fixtures.qcheck_case prop_bridge_roundtrip;
      ] );
  ]
