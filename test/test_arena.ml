(* Arena-decoding tests: the recycling pools themselves, the
   arena-decode == heap-decode differential property on random (cyclic,
   null-ridden) graphs, flat-array recycling across resets, the
   counters-preserved discipline, and the S_flat_array deoptimization
   path (ragged/heterogeneous/null rows -> Type_confusion -> widen ->
   replay). *)

open Rmi_serial
module Plan = Rmi_core.Plan
module Msgbuf = Rmi_wire.Msgbuf
module Metrics = Rmi_stats.Metrics

let meta =
  Class_meta.make
    [
      ("Cell", [ ("next", Jir.Types.Tobject 0) ]);
      ("Pair", [ ("a", Jir.Types.Tint); ("b", Jir.Types.Tobject 0) ]);
    ]

let check_equal what expected actual =
  match Equality.check ~expected ~actual with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "%s: %s" what msg

(* ------------------------------------------------------------------ *)
(* the pools themselves                                                *)
(* ------------------------------------------------------------------ *)

let pool_hit_miss_reset () =
  let m = Metrics.create () in
  let a = Arena.create ~metrics:m in
  let o1 = Arena.obj a ~cls:3 ~nfields:2 in
  Alcotest.(check int) "one live node" 1 (Arena.live a);
  Alcotest.(check int) "nothing parked yet" 0 (Arena.pooled a);
  let s = Metrics.snapshot m in
  Alcotest.(check int) "first request counted" 1 s.Metrics.arena_allocs;
  Alcotest.(check int) "first request was a pool miss" 1
    s.Metrics.arena_fallbacks;
  Arena.reset a;
  Alcotest.(check int) "reset empties the live set" 0 (Arena.live a);
  Alcotest.(check int) "reset parks the node" 1 (Arena.pooled a);
  Alcotest.(check int) "reset counted" 1 (Metrics.snapshot m).Metrics.arena_resets;
  (* same shape: the parked node comes back, physically *)
  let o2 = Arena.obj a ~cls:3 ~nfields:2 in
  Alcotest.(check bool) "same shape recycles the same node" true (o1 == o2);
  Alcotest.(check int) "hit is not a fallback" 1
    (Metrics.snapshot m).Metrics.arena_fallbacks;
  (* different shape: fresh node, fallback counted *)
  let o3 = Arena.obj a ~cls:3 ~nfields:3 in
  Alcotest.(check bool) "different shape allocates fresh" true (not (o2 == o3));
  Alcotest.(check int) "miss counted as fallback" 2
    (Metrics.snapshot m).Metrics.arena_fallbacks;
  (* arrays pool by length *)
  let d1 = Arena.darr a 16 in
  Arena.reset a;
  let d2 = Arena.darr a 16 in
  let d3 = Arena.darr a 8 in
  Alcotest.(check bool) "darr length hit" true (d1 == d2);
  Alcotest.(check bool) "darr length miss" true (not (d2 == d3))

let rarr_relem_mismatch_falls_back () =
  let m = Metrics.create () in
  let a = Arena.create ~metrics:m in
  let r1 = Arena.rarr a (Jir.Types.Tarray Jir.Types.Tdouble) 4 in
  Arena.reset a;
  let before = (Metrics.snapshot m).Metrics.arena_fallbacks in
  (* same length, different element type: the pooled array must not be
     handed out with a lying [relem] *)
  let r2 = Arena.rarr a (Jir.Types.Tarray Jir.Types.Tint) 4 in
  Alcotest.(check bool) "mismatched relem is not recycled" true (not (r1 == r2));
  Alcotest.(check bool) "mismatch counted as fallback" true
    ((Metrics.snapshot m).Metrics.arena_fallbacks > before);
  Alcotest.(check bool) "fresh array carries the requested relem" true
    (Jir.Types.equal_ty r2.Value.relem (Jir.Types.Tarray Jir.Types.Tint))

(* ------------------------------------------------------------------ *)
(* random graphs: arena decode must be indistinguishable from heap     *)
(* ------------------------------------------------------------------ *)

(* Random graphs in the Cell/Pair world, nulls included.  A second pass
   rewires one reference field at random, so back-edges (cycles) and
   cross-edges (sharing) both occur. *)
let gen_graph =
  let open QCheck.Gen in
  let leaf =
    oneof
      [
        return Value.Null;
        map (fun i -> Value.Int i) int;
        map (fun f -> Value.Double f) float;
        map (fun s -> Value.Str s) (string_size (int_bound 8));
      ]
  in
  let base =
    fix
      (fun self depth ->
        if depth = 0 then leaf
        else
          frequency
            [
              (2, leaf);
              ( 2,
                map
                  (fun next ->
                    let c = Value.new_obj ~cls:0 ~nfields:1 in
                    c.fields.(0) <- next;
                    Value.Obj c)
                  (self (depth - 1)) );
              ( 2,
                map2
                  (fun i next ->
                    let p = Value.new_obj ~cls:1 ~nfields:2 in
                    p.fields.(0) <- Value.Int i;
                    p.fields.(1) <- next;
                    Value.Obj p)
                  int
                  (self (depth - 1)) );
              ( 1,
                map
                  (fun fs ->
                    let a = Value.new_darr (List.length fs) in
                    List.iteri (fun i f -> a.d.(i) <- f) fs;
                    Value.Darr a)
                  (list_size (int_bound 6) float) );
            ])
      5
  in
  (* collect the object spine (the base graph is acyclic, so plain
     recursion terminates) *)
  let rec collect acc = function
    | Value.Obj o ->
        Array.fold_left collect (o :: acc) o.Value.fields
    | Value.Rarr a -> Array.fold_left collect acc a.Value.ra
    | _ -> acc
  in
  base >>= fun v ->
  let objs = Array.of_list (collect [] v) in
  let n = Array.length objs in
  if n < 2 then return v
  else
    triple bool (int_bound (n - 1)) (int_bound (n - 1))
    >>= fun (tie, i, j) ->
    if tie then begin
      let src = objs.(i) and dst = objs.(j) in
      (* Cell.next is field 0, Pair.b is field 1 *)
      let fld = if Array.length src.Value.fields = 1 then 0 else 1 in
      src.Value.fields.(fld) <- Value.Obj dst
    end;
    return v

let arb_graph = QCheck.make ~print:(Format.asprintf "%a" Value.pp) gen_graph

let decode_with ?arena bytes =
  let m = Metrics.create () in
  let rctx = Codec.make_rctx ?arena meta m ~cycle:true in
  (Codec.read_dyn rctx (Msgbuf.reader_of_writer bytes) ~cand:Value.Null, m)

let prop_arena_decode_equals_heap =
  QCheck.Test.make ~name:"arena decode == heap decode on random graphs"
    ~count:200 arb_graph (fun v ->
      let m = Metrics.create () in
      let w = Msgbuf.create_writer () in
      Codec.write_dyn (Codec.make_wctx meta m ~cycle:true) w v;
      let heap, _ = decode_with w in
      let arena = Arena.create ~metrics:m in
      let from_arena, _ = decode_with ~arena w in
      (* both roundtrip, and agree with each other *)
      Equality.equal v heap && Equality.equal v from_arena
      && Equality.equal heap from_arena
      &&
      (* a second decode out of the recycled pools is still correct *)
      (Arena.reset arena;
       let again, _ = decode_with ~arena w in
       Equality.equal v again))

let prop_arena_preserves_paper_counters =
  QCheck.Test.make
    ~name:"arena decode charges the same paper-table counters" ~count:200
    arb_graph (fun v ->
      let m = Metrics.create () in
      let w = Msgbuf.create_writer () in
      Codec.write_dyn (Codec.make_wctx meta m ~cycle:true) w v;
      let _, mh = decode_with w in
      let arena = Arena.create ~metrics:(Metrics.create ()) in
      let _, ma = decode_with ~arena w in
      let h = Metrics.snapshot mh and a = Metrics.snapshot ma in
      h.Metrics.allocs = a.Metrics.allocs
      && h.Metrics.new_bytes = a.Metrics.new_bytes
      && h.Metrics.reused_objs = a.Metrics.reused_objs
      && h.Metrics.cycle_lookups = a.Metrics.cycle_lookups)

(* ------------------------------------------------------------------ *)
(* flat arrays through the arena                                       *)
(* ------------------------------------------------------------------ *)

let matrix rows cols =
  let outer =
    Value.new_rarr (Jir.Types.Tarray Jir.Types.Tdouble) rows
  in
  for i = 0 to rows - 1 do
    let inner = Value.new_darr cols in
    Array.iteri
      (fun j _ -> inner.Value.d.(j) <- float_of_int ((i * cols) + j))
      inner.Value.d;
    outer.Value.ra.(i) <- Value.Darr inner
  done;
  Value.Rarr outer

let flat_step = Plan.S_flat_array { felem = Plan.F_darr }

let encode_flat v =
  let m = Metrics.create () in
  let w = Msgbuf.create_writer () in
  Codec.write_step (Codec.make_wctx meta m ~cycle:false) w flat_step v;
  w

let flat_recycles_across_resets () =
  let v = matrix 4 4 in
  let bytes = encode_flat v in
  let m = Metrics.create () in
  let arena = Arena.create ~metrics:m in
  let rctx = Codec.make_rctx ~arena meta m ~cycle:false in
  let got1 =
    Codec.read_step rctx (Msgbuf.reader_of_writer bytes) flat_step
      ~cand:Value.Null
  in
  check_equal "first arena decode" v got1;
  Alcotest.(check int) "matrix is 5 live nodes" 5 (Arena.live arena);
  Arena.reset arena;
  Codec.reset_rctx rctx;
  let got2 =
    Codec.read_step rctx (Msgbuf.reader_of_writer bytes) flat_step
      ~cand:Value.Null
  in
  check_equal "second arena decode" v got2;
  (match (got1, got2) with
  | Value.Rarr a, Value.Rarr b ->
      Alcotest.(check bool) "outer array physically recycled" true (a == b)
  | _ -> Alcotest.fail "expected reference arrays");
  let s = Metrics.snapshot m in
  Alcotest.(check bool) "steady state: no new fallbacks on round 2" true
    (s.Metrics.arena_allocs > s.Metrics.arena_fallbacks)

(* ------------------------------------------------------------------ *)
(* broken static promises: confusion -> widen -> replay                *)
(* ------------------------------------------------------------------ *)

let flat_plan () =
  {
    Plan.callsite = 0;
    defs = [||];
    args = [| flat_step |];
    ret = None;
    cycle_args = false;
    cycle_ret = false;
    reuse_args = [| true |];
    reuse_ret = false;
    non_escaping = true;
    version = 1;
    polluted = false;
  }

let confusion_on v =
  let m = Metrics.create () in
  let w = Msgbuf.create_writer () in
  let wctx = Codec.make_wctx meta m ~cycle:false in
  try
    Codec.write_step wctx w flat_step v;
    false
  with Codec.Type_confusion _ -> true

let flat_rejects_broken_shapes () =
  (* ragged rows *)
  let ragged = Value.new_rarr (Jir.Types.Tarray Jir.Types.Tdouble) 3 in
  ragged.Value.ra.(0) <- Value.Darr (Value.new_darr 4);
  ragged.Value.ra.(1) <- Value.Darr (Value.new_darr 2);
  ragged.Value.ra.(2) <- Value.Darr (Value.new_darr 4);
  Alcotest.(check bool) "ragged rows raise" true
    (confusion_on (Value.Rarr ragged));
  (* a null row *)
  let holed = Value.new_rarr (Jir.Types.Tarray Jir.Types.Tdouble) 2 in
  holed.Value.ra.(0) <- Value.Darr (Value.new_darr 3);
  holed.Value.ra.(1) <- Value.Null;
  Alcotest.(check bool) "null row raises" true (confusion_on (Value.Rarr holed));
  (* a heterogeneous row *)
  let mixed = Value.new_rarr (Jir.Types.Tarray Jir.Types.Tdouble) 2 in
  mixed.Value.ra.(0) <- Value.Darr (Value.new_darr 3);
  mixed.Value.ra.(1) <- Value.Iarr (Value.new_iarr 3);
  Alcotest.(check bool) "int row under F_darr raises" true
    (confusion_on (Value.Rarr mixed));
  (* the happy shape still does not *)
  Alcotest.(check bool) "rectangular matrix encodes" false
    (confusion_on (matrix 3 4))

let flat_deopt_widen_replay () =
  (* the compiled promise meets a ragged matrix: the fast encode aborts,
     the plan widens the argument to S_dyn, and the replay delivers the
     exact value the caller meant to send *)
  let ragged = Value.new_rarr (Jir.Types.Tarray Jir.Types.Tdouble) 3 in
  ragged.Value.ra.(0) <- Value.Darr (Value.new_darr 2);
  ragged.Value.ra.(1) <- Value.Darr (Value.new_darr 5);
  ragged.Value.ra.(2) <- Value.Null;
  let v = Value.Rarr ragged in
  let plan = flat_plan () in
  Alcotest.(check bool) "fast path aborts" true (confusion_on v);
  let widened = Plan.widen plan (`Arg 0) in
  (match widened.Plan.args.(0) with
  | Plan.S_dyn -> ()
  | s -> Alcotest.failf "expected S_dyn after widen, got %a" Plan.pp_step s);
  Alcotest.(check bool) "widened plan is polluted" true widened.Plan.polluted;
  Alcotest.(check bool) "version bumped" true
    (widened.Plan.version > plan.Plan.version);
  Alcotest.(check bool) "cycle table back on" true widened.Plan.cycle_args;
  (* replay through the widened plan, decoding into an arena: the
     ragged value the static analysis never promised still roundtrips *)
  let m = Metrics.create () in
  let w = Msgbuf.create_writer () in
  let wctx = Codec.make_wctx meta m ~cycle:widened.Plan.cycle_args in
  Codec.write_step wctx w widened.Plan.args.(0) v;
  let arena = Arena.create ~metrics:m in
  let rctx =
    Codec.make_rctx ~arena meta m ~cycle:widened.Plan.cycle_args
  in
  let got =
    Codec.read_step rctx (Msgbuf.reader_of_writer w) widened.Plan.args.(0)
      ~cand:Value.Null
  in
  check_equal "widened replay" v got

let suite =
  [
    ( "serial.arena",
      [
        Alcotest.test_case "pool hit/miss/reset accounting" `Quick
          pool_hit_miss_reset;
        Alcotest.test_case "rarr element-type mismatch falls back" `Quick
          rarr_relem_mismatch_falls_back;
        Alcotest.test_case "flat matrix recycles across resets" `Quick
          flat_recycles_across_resets;
        Alcotest.test_case "flat array rejects broken shapes" `Quick
          flat_rejects_broken_shapes;
        Alcotest.test_case "flat deopt: confusion -> widen -> replay" `Quick
          flat_deopt_widen_replay;
        Fixtures.qcheck_case prop_arena_decode_equals_heap;
        Fixtures.qcheck_case prop_arena_preserves_paper_counters;
      ] );
  ]
