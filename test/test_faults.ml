(* Failure injection: the runtime must degrade cleanly when the network
   corrupts, truncates or drops messages. *)

open Rmi_runtime
module Value = Rmi_serial.Value
module Metrics = Rmi_stats.Metrics

let meta = Rmi_serial.Class_meta.make [ ("Box", [ ("v", Jir.Types.Tint) ]) ]

let m_incr = 1

let make_fabric ?(mode = Fabric.Sync) () =
  let metrics = Metrics.create () in
  let fabric =
    Fabric.create ~mode ~n:2 ~meta ~config:Config.class_
      ~plans:(Hashtbl.create 4) ~metrics ()
  in
  for i = 0 to 1 do
    Node.export (Fabric.node fabric i) ~obj:0 ~meth:m_incr ~has_ret:true
      (fun args ->
        match args.(0) with
        | Value.Obj o -> (
            match o.fields.(0) with
            | Value.Int v ->
                let b = Value.new_obj ~cls:0 ~nfields:1 in
                b.fields.(0) <- Value.Int (v + 1);
                Some (Value.Obj b)
            | _ -> failwith "bad box")
        | _ -> failwith "bad arg")
  done;
  fabric

let box v =
  let b = Value.new_obj ~cls:0 ~nfields:1 in
  b.fields.(0) <- Value.Int v;
  Value.Obj b

let call fabric =
  Node.call (Fabric.node fabric 0)
    ~dest:(Remote_ref.make ~machine:1 ~obj:0)
    ~meth:m_incr ~callsite:1 ~has_ret:true [| box 1 |]

(* reach into the fabric's cluster through a fresh one: the fabric owns
   its cluster privately, so fault hooks are installed via the node's
   cluster — exposed through Fabric for tests *)

let truncated_payload_is_clean_error () =
  let metrics = Metrics.create () in
  let cluster = Rmi_net.Cluster.create ~n:2 metrics in
  (* build nodes directly so the cluster handle stays in reach *)
  let plans = Hashtbl.create 4 in
  let n0 = Node.create (Rmi_net.Sim.pack cluster) ~id:0 ~meta ~config:Config.class_ ~plans in
  let n1 = Node.create (Rmi_net.Sim.pack cluster) ~id:1 ~meta ~config:Config.class_ ~plans in
  Node.set_pump n0 (fun () -> Node.serve_pending n1);
  Node.set_pump n1 (fun () -> Node.serve_pending n0);
  Node.export n1 ~obj:0 ~meth:m_incr ~has_ret:true (fun args -> Some args.(0));
  (* truncate request payloads (keep the 9-byte header intact) *)
  Rmi_net.Cluster.set_fault_hook cluster (fun ~src:_ ~dest msg ->
      if dest = 1 && Bytes.length msg > 9 then [ Bytes.sub msg 0 9 ]
      else [ msg ]);
  Alcotest.(check bool) "clean remote error" true
    (try
       ignore
         (Node.call n0
            ~dest:(Remote_ref.make ~machine:1 ~obj:0)
            ~meth:m_incr ~callsite:1 ~has_ret:true [| box 1 |]);
       false
     with Node.Remote_exception msg ->
       String.length msg > 0);
  (* remove the fault: the same machines keep working *)
  Rmi_net.Cluster.clear_fault_hook cluster;
  match
    Node.call n0
      ~dest:(Remote_ref.make ~machine:1 ~obj:0)
      ~meth:m_incr ~callsite:1 ~has_ret:true [| box 7 |]
  with
  | Some v -> Alcotest.(check bool) "recovered" true (Rmi_serial.Equality.equal v (box 7))
  | None -> Alcotest.fail "no reply after recovery"

let dropped_message_detected_as_deadlock () =
  let metrics = Metrics.create () in
  let cluster = Rmi_net.Cluster.create ~n:2 metrics in
  let plans = Hashtbl.create 4 in
  let n0 = Node.create (Rmi_net.Sim.pack cluster) ~id:0 ~meta ~config:Config.class_ ~plans in
  let n1 = Node.create (Rmi_net.Sim.pack cluster) ~id:1 ~meta ~config:Config.class_ ~plans in
  Node.set_pump n0 (fun () -> Node.serve_pending n1);
  Node.set_pump n1 (fun () -> Node.serve_pending n0);
  Node.export n1 ~obj:0 ~meth:m_incr ~has_ret:true (fun args -> Some args.(0));
  (* drop every request to machine 1 *)
  Rmi_net.Cluster.set_fault_hook cluster (fun ~src:_ ~dest _ ->
      if dest = 1 then [] else assert false);
  Alcotest.(check bool) "deadlock detected" true
    (try
       ignore
         (Node.call n0
            ~dest:(Remote_ref.make ~machine:1 ~obj:0)
            ~meth:m_incr ~callsite:1 ~has_ret:true [| box 1 |]);
       false
     with Node.Deadlock _ -> true);
  (* the raw transport never retransmits or times out — those counters
     belong to the reliable layer alone *)
  let s = Metrics.snapshot metrics in
  Alcotest.(check int) "raw path: no retries" 0 s.Metrics.retries;
  Alcotest.(check int) "raw path: no timeouts" 0 s.Metrics.timeouts

(* a 2-machine pair over the reliable transport, for the recovery
   cases below *)
let reliable_pair () =
  let metrics = Metrics.create () in
  let cluster =
    Rmi_net.Cluster.create
      ~transport:(Rmi_net.Cluster.Reliable Rmi_net.Cluster.default_params)
      ~n:2 metrics
  in
  let plans = Hashtbl.create 4 in
  let n0 = Node.create (Rmi_net.Sim.pack cluster) ~id:0 ~meta ~config:Config.class_ ~plans in
  let n1 = Node.create (Rmi_net.Sim.pack cluster) ~id:1 ~meta ~config:Config.class_ ~plans in
  Node.set_pump n0 (fun () -> Node.serve_pending n1);
  Node.set_pump n1 (fun () -> Node.serve_pending n0);
  Node.export n1 ~obj:0 ~meth:m_incr ~has_ret:true (fun args ->
      match args.(0) with
      | Value.Obj o -> (
          match o.Value.fields.(0) with
          | Value.Int v ->
              let b = Value.new_obj ~cls:0 ~nfields:1 in
              b.Value.fields.(0) <- Value.Int (v + 1);
              Some (Value.Obj b)
          | _ -> failwith "bad box")
      | _ -> failwith "bad arg");
  (metrics, cluster, n0)

let transient_drops_recovered_and_counted () =
  let metrics, cluster, n0 = reliable_pair () in
  (* drop the first three frames toward machine 1, then heal the link *)
  let dropped = ref 0 in
  Rmi_net.Cluster.set_fault_hook cluster (fun ~src:_ ~dest msg ->
      if dest = 1 && !dropped < 3 then begin
        incr dropped;
        []
      end
      else [ msg ]);
  (match
     Node.call n0
       ~dest:(Remote_ref.make ~machine:1 ~obj:0)
       ~meth:m_incr ~callsite:1 ~has_ret:true [| box 41 |]
   with
  | Some v ->
      Alcotest.(check bool) "recovered result" true
        (Rmi_serial.Equality.equal v (box 42))
  | None -> Alcotest.fail "no reply despite retransmission");
  let s = Metrics.snapshot metrics in
  Alcotest.(check bool) "retries counted" true (s.Metrics.retries >= 1);
  Alcotest.(check int) "no timeouts on a healed link" 0 s.Metrics.timeouts

let permanent_partition_times_out_cleanly () =
  let metrics, cluster, n0 = reliable_pair () in
  (* machine 1 is unreachable forever; recv_blocking must not hang —
     after the RPC-level retries are spent the call has to surface a
     clean Peer_down *)
  Rmi_net.Cluster.set_fault_hook cluster (fun ~src:_ ~dest msg ->
      if dest = 1 then [] else [ msg ]);
  Alcotest.(check bool) "clean peer-down" true
    (try
       ignore
         (Node.call n0
            ~dest:(Remote_ref.make ~machine:1 ~obj:0)
            ~meth:m_incr ~callsite:1 ~has_ret:true [| box 1 |]);
       false
     with Node.Peer_down msg -> String.length msg > 0);
  let s = Metrics.snapshot metrics in
  Alcotest.(check bool) "retransmit budget spent" true
    (s.Metrics.retries >= Rmi_net.Cluster.default_params.Rmi_net.Cluster.max_attempts - 1);
  Alcotest.(check bool) "abandoned frame counted" true (s.Metrics.timeouts >= 1);
  (* the repeated transport failures opened machine 1's circuit
     breaker: a call issued inside the cooldown fast-fails without
     touching the wire *)
  (try
     ignore
       (Node.call n0
          ~dest:(Remote_ref.make ~machine:1 ~obj:0)
          ~meth:m_incr ~callsite:1 ~has_ret:true [| box 2 |]);
     Alcotest.fail "expected a breaker fast-fail"
   with Node.Peer_down _ -> ());
  Alcotest.(check bool) "fast-fail counted" true
    ((Metrics.snapshot metrics).Metrics.breaker_fastfails >= 1);
  (* the partition heals and the cooldown passes: the half-open probe
     goes through and the same pair keeps working *)
  Rmi_net.Cluster.clear_fault_hook cluster;
  Unix.sleepf 0.3;
  match
    Node.call n0
      ~dest:(Remote_ref.make ~machine:1 ~obj:0)
      ~meth:m_incr ~callsite:1 ~has_ret:true [| box 7 |]
  with
  | Some v ->
      Alcotest.(check bool) "recovered after heal" true
        (Rmi_serial.Equality.equal v (box 8))
  | None -> Alcotest.fail "no reply after heal"

let garbage_header_is_ignored () =
  let metrics = Metrics.create () in
  let cluster = Rmi_net.Cluster.create ~n:2 metrics in
  let plans = Hashtbl.create 4 in
  let n0 = Node.create (Rmi_net.Sim.pack cluster) ~id:0 ~meta ~config:Config.class_ ~plans in
  let n1 = Node.create (Rmi_net.Sim.pack cluster) ~id:1 ~meta ~config:Config.class_ ~plans in
  Node.set_pump n0 (fun () -> Node.serve_pending n1);
  Node.set_pump n1 (fun () -> Node.serve_pending n0);
  Node.export n1 ~obj:0 ~meth:m_incr ~has_ret:true (fun args -> Some args.(0));
  (* inject pure garbage ahead of a real exchange *)
  Rmi_net.Cluster.send cluster ~src:0 ~dest:1 (Bytes.of_string "\xff\xfe");
  match
    Node.call n0
      ~dest:(Remote_ref.make ~machine:1 ~obj:0)
      ~meth:m_incr ~callsite:1 ~has_ret:true [| box 3 |]
  with
  | Some v ->
      Alcotest.(check bool) "garbage skipped, call served" true
        (Rmi_serial.Equality.equal v (box 3))
  | None -> Alcotest.fail "no reply"

let handler_exception_does_not_kill_worker () =
  (* repeated remote failures in parallel mode; the worker must survive
     them all *)
  let fabric = make_fabric ~mode:Fabric.Parallel () in
  Node.export (Fabric.node fabric 1) ~obj:0 ~meth:9 ~has_ret:true (fun _ ->
      failwith "boom");
  Fabric.run fabric (fun fabric ->
      let caller = Fabric.node fabric 0 in
      for _ = 1 to 10 do
        (try
           ignore
             (Node.call caller
                ~dest:(Remote_ref.make ~machine:1 ~obj:0)
                ~meth:9 ~callsite:1 ~has_ret:true [||])
         with Node.Remote_exception _ -> ())
      done;
      match call fabric with
      | Some v -> Alcotest.(check bool) "alive" true (Rmi_serial.Equality.equal v (box 2))
      | None -> Alcotest.fail "worker died")

let suite =
  [
    ( "faults",
      [
        Alcotest.test_case "truncated payload -> clean error + recovery" `Quick
          truncated_payload_is_clean_error;
        Alcotest.test_case "dropped message -> deadlock detection" `Quick
          dropped_message_detected_as_deadlock;
        Alcotest.test_case "reliable: transient drops recovered + counted"
          `Quick transient_drops_recovered_and_counted;
        Alcotest.test_case "reliable: permanent partition -> clean timeout"
          `Quick permanent_partition_times_out_cleanly;
        Alcotest.test_case "garbage header ignored" `Quick garbage_header_is_ignored;
        Alcotest.test_case "handler exceptions don't kill workers" `Quick
          handler_exception_does_not_kill_worker;
      ] );
  ]
