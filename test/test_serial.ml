(* Serializer tests: dynamic and plan-driven roundtrips, cycle and
   sharing preservation, reuse-candidate behaviour, the introspective
   baseline, and random-graph properties. *)

open Rmi_serial
module Plan = Rmi_core.Plan
module Msgbuf = Rmi_wire.Msgbuf
module Metrics = Rmi_stats.Metrics

(* a small class world: Cell{next: Cell}, Pair{a: int, b: Cell} *)
let meta =
  Class_meta.make
    [
      ("Cell", [ ("next", Jir.Types.Tobject 0) ]);
      ("Pair", [ ("a", Jir.Types.Tint); ("b", Jir.Types.Tobject 0) ]);
    ]

let roundtrip_dyn ?(cycle = true) v =
  let m = Metrics.create () in
  let w = Msgbuf.create_writer () in
  let wctx = Codec.make_wctx meta m ~cycle in
  Codec.write_dyn wctx w v;
  let rctx = Codec.make_rctx meta m ~cycle in
  Codec.read_dyn rctx (Msgbuf.reader_of_writer w) ~cand:Value.Null

let roundtrip_step ?(cycle = true) ?(cand = Value.Null) step v =
  let m = Metrics.create () in
  let w = Msgbuf.create_writer () in
  let wctx = Codec.make_wctx meta m ~cycle in
  Codec.write_step wctx w step v;
  let rctx = Codec.make_rctx meta m ~cycle in
  Codec.read_step rctx (Msgbuf.reader_of_writer w) step ~cand

let check_equal what expected actual =
  match Equality.check ~expected ~actual with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "%s: %s" what msg

let prims_roundtrip () =
  List.iter
    (fun v -> check_equal "prim" v (roundtrip_dyn v))
    [
      Value.Null; Value.Bool true; Value.Bool false; Value.Int 42;
      Value.Int (-7); Value.Double 3.25; Value.Str "hello";
    ]

let object_roundtrip () =
  let cell = Value.new_obj ~cls:0 ~nfields:1 in
  let pair = Value.new_obj ~cls:1 ~nfields:2 in
  pair.fields.(0) <- Value.Int 5;
  pair.fields.(1) <- Value.Obj cell;
  check_equal "pair" (Value.Obj pair) (roundtrip_dyn (Value.Obj pair))

let cyclic_roundtrip () =
  let a = Value.new_obj ~cls:0 ~nfields:1 in
  let b = Value.new_obj ~cls:0 ~nfields:1 in
  a.fields.(0) <- Value.Obj b;
  b.fields.(0) <- Value.Obj a;
  let copy = roundtrip_dyn (Value.Obj a) in
  check_equal "2-cycle" (Value.Obj a) copy;
  (* the copy must be cyclic too, not an infinite unrolling *)
  match copy with
  | Value.Obj a' -> (
      match a'.fields.(0) with
      | Value.Obj b' -> (
          match b'.fields.(0) with
          | Value.Obj a'' -> Alcotest.(check bool) "closed cycle" true (a'' == a')
          | v -> Alcotest.failf "bad cycle %a" Value.pp v)
      | v -> Alcotest.failf "bad cycle %a" Value.pp v)
  | v -> Alcotest.failf "bad root %a" Value.pp v

let sharing_preserved () =
  let shared = Value.new_obj ~cls:0 ~nfields:1 in
  let arr = Value.new_rarr (Jir.Types.Tobject 0) 2 in
  arr.ra.(0) <- Value.Obj shared;
  arr.ra.(1) <- Value.Obj shared;
  match roundtrip_dyn (Value.Rarr arr) with
  | Value.Rarr a' -> (
      match (a'.ra.(0), a'.ra.(1)) with
      | Value.Obj x, Value.Obj y ->
          Alcotest.(check bool) "same object" true (x == y)
      | _ -> Alcotest.fail "expected objects")
  | v -> Alcotest.failf "bad root %a" Value.pp v

let double_array_roundtrip () =
  let a = Value.new_darr 64 in
  Array.iteri (fun i _ -> a.d.(i) <- float_of_int i *. 1.5) a.d;
  check_equal "darr" (Value.Darr a) (roundtrip_dyn (Value.Darr a));
  check_equal "darr step" (Value.Darr a)
    (roundtrip_step Plan.S_double_array (Value.Darr a))

let plan_obj_roundtrip () =
  let step =
    Plan.S_obj { cls = 1; fields = [| Plan.S_int; Plan.S_obj { cls = 0; fields = [| Plan.S_null |] } |] }
  in
  let cell = Value.new_obj ~cls:0 ~nfields:1 in
  let pair = Value.new_obj ~cls:1 ~nfields:2 in
  pair.fields.(0) <- Value.Int 99;
  pair.fields.(1) <- Value.Obj cell;
  check_equal "plan pair" (Value.Obj pair) (roundtrip_step step (Value.Obj pair))

let plan_nested_array () =
  (* the Figure 13 shape: double[][] *)
  let step = Plan.S_obj_array { elem = Plan.S_double_array } in
  let outer = Value.new_rarr (Jir.Types.Tarray Jir.Types.Tdouble) 4 in
  for i = 0 to 3 do
    let inner = Value.new_darr 4 in
    Array.iteri (fun j _ -> inner.d.(j) <- float_of_int ((i * 4) + j)) inner.d;
    outer.ra.(i) <- Value.Darr inner
  done;
  check_equal "double[][]" (Value.Rarr outer)
    (roundtrip_step ~cycle:false step (Value.Rarr outer))

let plan_wire_smaller_than_dyn () =
  (* site-specific plans must remove type bytes from the wire *)
  let outer = Value.new_rarr (Jir.Types.Tarray Jir.Types.Tdouble) 16 in
  for i = 0 to 15 do
    outer.ra.(i) <- Value.Darr (Value.new_darr 16)
  done;
  let m = Metrics.create () in
  let size_with write =
    let w = Msgbuf.create_writer () in
    write w;
    Msgbuf.length w
  in
  let dyn_size =
    size_with (fun w ->
        Codec.write_dyn (Codec.make_wctx meta m ~cycle:true) w (Value.Rarr outer))
  in
  let plan_size =
    size_with (fun w ->
        Codec.write_step
          (Codec.make_wctx meta m ~cycle:false)
          w
          (Plan.S_obj_array { elem = Plan.S_double_array })
          (Value.Rarr outer))
  in
  Alcotest.(check bool)
    (Printf.sprintf "plan %d < dyn %d bytes" plan_size dyn_size)
    true (plan_size < dyn_size)

let cycle_lookups_elided () =
  let outer = Value.new_rarr (Jir.Types.Tarray Jir.Types.Tdouble) 8 in
  for i = 0 to 7 do
    outer.ra.(i) <- Value.Darr (Value.new_darr 8)
  done;
  let step = Plan.S_obj_array { elem = Plan.S_double_array } in
  let count cycle =
    let m = Metrics.create () in
    let w = Msgbuf.create_writer () in
    Codec.write_step (Codec.make_wctx meta m ~cycle) w step (Value.Rarr outer);
    let rctx = Codec.make_rctx meta m ~cycle in
    ignore (Codec.read_step rctx (Msgbuf.reader_of_writer w) step ~cand:Value.Null);
    (Metrics.snapshot m).Metrics.cycle_lookups
  in
  Alcotest.(check int) "no lookups when elided" 0 (count false);
  Alcotest.(check bool) "lookups otherwise" true (count true > 0)

let reuse_hits_matching_shape () =
  let mk () =
    let outer = Value.new_rarr (Jir.Types.Tarray Jir.Types.Tdouble) 3 in
    for i = 0 to 2 do
      outer.ra.(i) <- Value.Darr (Value.new_darr 5)
    done;
    outer
  in
  let step = Plan.S_obj_array { elem = Plan.S_double_array } in
  let m = Metrics.create () in
  let w = Msgbuf.create_writer () in
  Codec.write_step (Codec.make_wctx meta m ~cycle:false) w step (Value.Rarr (mk ()));
  let cand = Value.Rarr (mk ()) in
  let cand_id = match cand with Value.Rarr a -> a.rid | _ -> assert false in
  Metrics.reset m;
  let rctx = Codec.make_rctx meta m ~cycle:false in
  let got = Codec.read_step rctx (Msgbuf.reader_of_writer w) step ~cand in
  (match got with
  | Value.Rarr a -> Alcotest.(check int) "same array object" cand_id a.rid
  | v -> Alcotest.failf "bad root %a" Value.pp v);
  let s = Metrics.snapshot m in
  Alcotest.(check int) "4 reused (outer + 3 inner)" 4 s.Metrics.reused_objs;
  Alcotest.(check int) "no allocations" 0 s.Metrics.allocs

let reuse_falls_back_on_mismatch () =
  (* cached arrays of the wrong length must be reallocated (the paper:
     "If an array size is mismatched ... a new array is allocated") *)
  let step = Plan.S_double_array in
  let m = Metrics.create () in
  let w = Msgbuf.create_writer () in
  let incoming = Value.new_darr 8 in
  Codec.write_step (Codec.make_wctx meta m ~cycle:false) w step (Value.Darr incoming);
  Metrics.reset m;
  let rctx = Codec.make_rctx meta m ~cycle:false in
  let cand = Value.Darr (Value.new_darr 4) in
  (match Codec.read_step rctx (Msgbuf.reader_of_writer w) step ~cand with
  | Value.Darr a -> Alcotest.(check int) "fresh length" 8 (Array.length a.d)
  | v -> Alcotest.failf "bad %a" Value.pp v);
  let s = Metrics.snapshot m in
  Alcotest.(check int) "no reuse" 0 s.Metrics.reused_objs;
  Alcotest.(check int) "one allocation" 1 s.Metrics.allocs

let reuse_through_dyn_list () =
  (* the linked-list case: reuse works through the dynamic serializer *)
  let rec make_list n =
    if n = 0 then Value.Null
    else begin
      let c = Value.new_obj ~cls:0 ~nfields:1 in
      c.fields.(0) <- make_list (n - 1);
      Value.Obj c
    end
  in
  let m = Metrics.create () in
  let w = Msgbuf.create_writer () in
  Codec.write_dyn (Codec.make_wctx meta m ~cycle:true) w (make_list 10);
  let cand = make_list 10 in
  Metrics.reset m;
  let rctx = Codec.make_rctx meta m ~cycle:true in
  let got = Codec.read_dyn rctx (Msgbuf.reader_of_writer w) ~cand in
  check_equal "list" (make_list 10) got;
  let s = Metrics.snapshot m in
  Alcotest.(check int) "all 10 cells reused" 10 s.Metrics.reused_objs;
  Alcotest.(check int) "no allocs" 0 s.Metrics.allocs

let introspect_roundtrip_and_cost () =
  let pair = Value.new_obj ~cls:1 ~nfields:2 in
  pair.fields.(0) <- Value.Int 5;
  pair.fields.(1) <- Value.Obj (Value.new_obj ~cls:0 ~nfields:1) ;
  let m_intro = Metrics.create () in
  let w1 = Msgbuf.create_writer () in
  Introspect.write (Introspect.make_wctx meta m_intro) w1 (Value.Obj pair);
  let got =
    Introspect.read (Introspect.make_rctx meta m_intro) (Msgbuf.reader_of_writer w1)
  in
  check_equal "introspect" (Value.Obj pair) got;
  (* introspection ships class names: more type bytes than the compact
     class-specific serializer *)
  let m_dyn = Metrics.create () in
  let w2 = Msgbuf.create_writer () in
  Codec.write_dyn (Codec.make_wctx meta m_dyn ~cycle:true) w2 (Value.Obj pair);
  let tb m = (Metrics.snapshot m).Metrics.type_bytes in
  Alcotest.(check bool)
    (Printf.sprintf "introspect %d > class %d type bytes" (tb m_intro) (tb m_dyn))
    true
    (tb m_intro > tb m_dyn)

let type_confusion_raises () =
  let m = Metrics.create () in
  let w = Msgbuf.create_writer () in
  let wctx = Codec.make_wctx meta m ~cycle:false in
  let cell = Value.new_obj ~cls:0 ~nfields:1 in
  Alcotest.(check bool) "raises" true
    (try
       Codec.write_step wctx w
         (Plan.S_obj { cls = 1; fields = [| Plan.S_int; Plan.S_null |] })
         (Value.Obj cell);
       false
     with Codec.Type_confusion _ -> true)

let contexts_reusable_after_confusion () =
  (* regression for the deoptimizer's replay path: a specialized write
     that aborts mid-object leaves handles in the cycle table; after
     [reset_wctx] the same contexts must serialize the same value
     graph correctly, and the aborted attempt must not have bumped the
     message counters *)
  let m = Metrics.create () in
  let wctx = Codec.make_wctx meta m ~cycle:true in
  let rctx = Codec.make_rctx meta m ~cycle:true in
  (* Pair{a:int, b:Cell} where b points back at a registered cell *)
  let cell = Value.new_obj ~cls:0 ~nfields:1 in
  let pair = Value.new_obj ~cls:1 ~nfields:2 in
  pair.Value.fields.(0) <- Value.Int 7;
  pair.Value.fields.(1) <- Value.Obj cell;
  cell.Value.fields.(0) <- Value.Obj pair;
  let lying_step =
    (* promises b is statically a Pair: confusion at the inner object *)
    Plan.S_obj
      {
        cls = 1;
        fields = [| Plan.S_int; Plan.S_obj { cls = 1; fields = [||] } |];
      }
  in
  let w = Msgbuf.create_writer () in
  (match Codec.write_step wctx w lying_step (Value.Obj pair) with
  | exception Codec.Type_confusion _ -> ()
  | () -> Alcotest.fail "lying step must raise");
  let before = Metrics.snapshot m in
  Alcotest.(check int) "no message accounted for the abort" 0
    before.Metrics.msgs_sent;
  (* the aborted write registered [pair] in the handle table; without a
     reset the retry would emit a dangling back-reference *)
  Codec.reset_wctx wctx;
  Codec.reset_rctx rctx;
  let w = Msgbuf.create_writer () in
  Codec.write_dyn wctx w (Value.Obj pair);
  let got = Codec.read_dyn rctx (Msgbuf.reader_of_writer w) ~cand:Value.Null in
  Alcotest.(check bool) "same contexts roundtrip the cycle" true
    (Equality.equal (Value.Obj pair) got)

(* random acyclic value graphs for property tests *)
let gen_value =
  let open QCheck.Gen in
  let leaf =
    oneof
      [
        return Value.Null;
        map (fun b -> Value.Bool b) bool;
        map (fun i -> Value.Int i) int;
        map (fun f -> Value.Double f) float;
        map (fun s -> Value.Str s) (string_size (int_bound 12));
      ]
  in
  fix
    (fun self depth ->
      if depth = 0 then leaf
      else
        frequency
          [
            (3, leaf);
            ( 1,
              map
                (fun next ->
                  let c = Value.new_obj ~cls:0 ~nfields:1 in
                  c.fields.(0) <- next;
                  Value.Obj c)
                (self (depth - 1)) );
            ( 1,
              map2
                (fun i next ->
                  let p = Value.new_obj ~cls:1 ~nfields:2 in
                  p.fields.(0) <- Value.Int i;
                  p.fields.(1) <- next;
                  Value.Obj p)
                int
                (self (depth - 1)) );
            ( 1,
              map
                (fun fs ->
                  let a = Value.new_darr (List.length fs) in
                  List.iteri (fun i f -> a.d.(i) <- f) fs;
                  Value.Darr a)
                (list_size (int_bound 8) float) );
          ]
        )
    4

let arb_value = QCheck.make ~print:(Format.asprintf "%a" Value.pp) gen_value

let prop_dyn_roundtrip =
  QCheck.Test.make ~name:"dynamic serializer roundtrips random graphs" ~count:300
    arb_value
    (fun v -> Equality.equal v (roundtrip_dyn v))

let prop_dyn_roundtrip_nocycle =
  QCheck.Test.make ~name:"acyclic graphs roundtrip without cycle table"
    ~count:300 arb_value
    (fun v -> Equality.equal v (roundtrip_dyn ~cycle:false v))

let prop_reuse_preserves_value =
  QCheck.Test.make ~name:"any candidate still deserializes correctly" ~count:300
    (QCheck.pair arb_value arb_value)
    (fun (v, cand) ->
      let m = Metrics.create () in
      let w = Msgbuf.create_writer () in
      Codec.write_dyn (Codec.make_wctx meta m ~cycle:true) w v;
      let rctx = Codec.make_rctx meta m ~cycle:true in
      let got = Codec.read_dyn rctx (Msgbuf.reader_of_writer w) ~cand in
      Equality.equal v got)

let suite =
  [
    ( "serial.codec",
      [
        Alcotest.test_case "primitives" `Quick prims_roundtrip;
        Alcotest.test_case "objects" `Quick object_roundtrip;
        Alcotest.test_case "cycles preserved" `Quick cyclic_roundtrip;
        Alcotest.test_case "sharing preserved" `Quick sharing_preserved;
        Alcotest.test_case "double arrays" `Quick double_array_roundtrip;
        Alcotest.test_case "plan object" `Quick plan_obj_roundtrip;
        Alcotest.test_case "plan double[][] (fig 13)" `Quick plan_nested_array;
        Alcotest.test_case "plan wire smaller than dyn" `Quick plan_wire_smaller_than_dyn;
        Alcotest.test_case "cycle lookups elided" `Quick cycle_lookups_elided;
        Alcotest.test_case "type confusion raises" `Quick type_confusion_raises;
        Alcotest.test_case "contexts reusable after confusion" `Quick
          contexts_reusable_after_confusion;
        Fixtures.qcheck_case prop_dyn_roundtrip;
        Fixtures.qcheck_case prop_dyn_roundtrip_nocycle;
      ] );
    ( "serial.reuse",
      [
        Alcotest.test_case "reuse hits matching shape" `Quick reuse_hits_matching_shape;
        Alcotest.test_case "size mismatch reallocates" `Quick reuse_falls_back_on_mismatch;
        Alcotest.test_case "reuse through dynamic list" `Quick reuse_through_dyn_list;
        Fixtures.qcheck_case prop_reuse_preserves_value;
      ] );
    ( "serial.introspect",
      [ Alcotest.test_case "roundtrip and type-byte cost" `Quick introspect_roundtrip_and_cost ] );
  ]
