(* Harness tests: paper data integrity, gain computation, rendering,
   and the microbenchmark tables end to end (small sizes). *)

module E = Rmi_harness.Experiment
module P = Rmi_harness.Paper_data
module Config = Rmi_runtime.Config

let paper_data_integrity () =
  (* every timing table has the five rows, class first at 0% gain *)
  List.iter
    (fun table ->
      Alcotest.(check int) "five rows" 5 (List.length table);
      List.iter
        (fun (c : Config.t) ->
          Alcotest.(check bool)
            (Printf.sprintf "row %s present" c.Config.name)
            true
            (P.seconds_for table c.Config.name <> None))
        Config.all;
      match P.gain_over_class table "class" with
      | Some g -> Alcotest.(check (float 1e-9)) "class gain 0" 0.0 g
      | None -> Alcotest.fail "no class row")
    [ P.table1_seconds; P.table2_seconds; P.table3_seconds; P.table5_seconds;
      P.table7_us_per_page ]

let paper_gains_match_printed () =
  (* the paper prints 43.3% for the reuse rows of Table 1 *)
  (match P.gain_over_class P.table1_seconds "site + reuse" with
  | Some g -> Alcotest.(check bool) "43.3%" true (Float.abs (g -. 43.3) < 0.1)
  | None -> Alcotest.fail "missing row");
  (* and 18.7% for all optimizations in Table 3 *)
  match P.gain_over_class P.table3_seconds "site + reuse + cycle" with
  | Some g -> Alcotest.(check bool) "18.7%" true (Float.abs (g -. 18.7) < 0.1)
  | None -> Alcotest.fail "missing row"

let stats_tables_have_five_rows () =
  List.iter
    (fun t -> Alcotest.(check int) "rows" 5 (List.length t))
    [ P.table4_stats; P.table6_stats; P.table8_stats ]

let table1_end_to_end () =
  let t = E.table1 () in
  Alcotest.(check int) "five rows" 5 (List.length t.E.rows);
  (* gains relative to class; class itself is 0 *)
  let class_row = List.hd t.E.rows in
  Alcotest.(check string) "class first" "class"
    class_row.E.config.Config.name;
  Alcotest.(check (float 1e-9)) "class gain" 0.0 (E.modeled_gain t class_row);
  (* the reuse rows must dominate: the paper's Table 1 story *)
  let gain name =
    E.modeled_gain t
      (List.find (fun r -> r.E.config.Config.name = name) t.E.rows)
  in
  Alcotest.(check bool) "reuse > site" true
    (gain "site + reuse" > gain "site");
  Alcotest.(check bool) "cycle ~ site (false positive)" true
    (Float.abs (gain "site + cycle" -. gain "site") < 2.0);
  (* rendering mentions every config and the shape summary is all ok *)
  let rendered = E.render_timing t in
  List.iter
    (fun (c : Config.t) ->
      let name = c.Config.name in
      Alcotest.(check bool)
        (Printf.sprintf "mentions %s" name)
        true
        (let n = String.length name in
         let rec has i =
           i + n <= String.length rendered
           && (String.sub rendered i n = name || has (i + 1))
         in
         has 0))
    Config.all;
  let summary = E.shape_summary t in
  Alcotest.(check bool) "no mismatch" true
    (let rec has i =
       i + 8 <= String.length summary
       && (String.sub summary i 8 = "MISMATCH" || has (i + 1))
     in
     not (has 0))

let table2_end_to_end () =
  let t = E.table2 () in
  let gain name =
    E.modeled_gain t
      (List.find (fun r -> r.E.config.Config.name = name) t.E.rows)
  in
  (* Table 2's ordering: everything helps, full opt wins *)
  Alcotest.(check bool) "site > 0" true (gain "site" > 0.0);
  Alcotest.(check bool) "cycle > site" true (gain "site + cycle" > gain "site");
  Alcotest.(check bool) "full is best" true
    (List.for_all
       (fun r -> E.modeled_gain t r <= gain "site + reuse + cycle" +. 1e-9)
       t.E.rows)

let stats_rendering () =
  let t = E.table1 () in
  let s = E.stats_table ~id:"x" ~title:"T" t P.table4_stats in
  Alcotest.(check bool) "has content" true (String.length s > 200)

let shape_summary_detects_mismatch () =
  (* hand-build a table whose measured winner contradicts the paper *)
  let mk name modeled =
    {
      E.config =
        (match Config.find name with Some c -> c | None -> assert false);
      wall_seconds = modeled;
      modeled_seconds = modeled;
      stats = Rmi_stats.Metrics.zero;
    }
  in
  let t =
    {
      E.id = "fake";
      title = "fake";
      unit_label = "s";
      rows =
        [ mk "class" 1.0; mk "site" 2.0 (* slower than class: wrong *) ;
          mk "site + cycle" 2.0; mk "site + reuse" 2.0;
          mk "site + reuse + cycle" 2.0 ];
      paper = P.table2_seconds;
      per_unit = Fun.id;
    }
  in
  let summary = E.shape_summary t in
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "mismatch reported" true (contains summary "MISMATCH")

let faults_compose_with_pipeline () =
  (* --faults alongside --pipeline: every issue discipline rides the
     same seeded lossy schedule and the checksums must agree across
     variants — the gate the CLI enforces with a nonzero exit *)
  let reports =
    E.pipeline_compare ~scale:E.Small ~window:4
      ~faults:(42, Rmi_net.Fault_sim.default_lossy)
      ()
  in
  Alcotest.(check bool) "reports produced" true (reports <> []);
  List.iter
    (fun r ->
      (match r.E.p_rows with
      | [] -> Alcotest.fail "no rows"
      | first :: rest ->
          List.iter
            (fun row ->
              Alcotest.(check (float 1e-9))
                (Printf.sprintf "%s checksum matches under faults"
                   row.E.variant)
                first.E.checksum row.E.checksum)
            rest);
      (* the lossy schedule actually fired: the reliable layer had to
         recover at least once somewhere *)
      let recovered =
        List.exists
          (fun row ->
            row.E.p_stats.Rmi_stats.Metrics.retries > 0
            || row.E.p_stats.Rmi_stats.Metrics.dup_drops > 0)
          r.E.p_rows
      in
      Alcotest.(check bool) "faults were injected" true recovered;
      let contains hay needle =
        let nh = String.length hay and nn = String.length needle in
        let rec go i =
          i + nn <= nh && (String.sub hay i nn = needle || go (i + 1))
        in
        go 0
      in
      Alcotest.(check bool) "title records the seed" true
        (contains r.E.p_title "faults seed=42"))
    reports

let crash_compare_end_to_end () =
  let r = E.crash_compare ~seed:42 ~calls:40 ~window:8 () in
  Alcotest.(check int) "three variants" 3 (List.length r.E.c_rows);
  let durable =
    List.find (fun row -> row.E.c_variant = "durable crash") r.E.c_rows
  in
  Alcotest.(check bool) "durable row ok" true durable.E.c_ok;
  Alcotest.(check bool) "seeded replay byte-identical" true r.E.c_replay_equal;
  Alcotest.(check bool) "digest non-empty" true
    (String.length r.E.c_digest > 0);
  let rendered = E.render_crash r in
  Alcotest.(check bool) "renders" true (String.length rendered > 100)

let suite =
  [
    ( "harness.paper_data",
      [
        Alcotest.test_case "integrity" `Quick paper_data_integrity;
        Alcotest.test_case "printed gains" `Quick paper_gains_match_printed;
        Alcotest.test_case "stats tables" `Quick stats_tables_have_five_rows;
      ] );
    ( "harness.tables",
      [
        Alcotest.test_case "table1 end to end" `Quick table1_end_to_end;
        Alcotest.test_case "table2 end to end" `Quick table2_end_to_end;
        Alcotest.test_case "stats rendering" `Quick stats_rendering;
        Alcotest.test_case "shape mismatch detected" `Quick
          shape_summary_detects_mismatch;
        Alcotest.test_case "--faults composes with --pipeline" `Quick
          faults_compose_with_pipeline;
        Alcotest.test_case "crash compare end to end" `Quick
          crash_compare_end_to_end;
      ] );
  ]
