(* Metrics and table-rendering tests. *)

module Metrics = Rmi_stats.Metrics
module Ascii_table = Rmi_stats.Ascii_table

let counters_accumulate () =
  let m = Metrics.create () in
  Metrics.incr_remote_rpcs m;
  Metrics.incr_remote_rpcs m;
  Metrics.incr_local_rpcs m;
  Metrics.add_reused_objs m 10;
  Metrics.add_new_bytes m 1024;
  Metrics.add_cycle_lookups m 3;
  Metrics.incr_ser_invocations m;
  Metrics.incr_msgs_sent m;
  Metrics.add_bytes_sent m 256;
  Metrics.add_type_bytes m 7;
  Metrics.incr_allocs m;
  let s = Metrics.snapshot m in
  Alcotest.(check int) "remote" 2 s.Metrics.remote_rpcs;
  Alcotest.(check int) "local" 1 s.Metrics.local_rpcs;
  Alcotest.(check int) "reused" 10 s.Metrics.reused_objs;
  Alcotest.(check int) "new bytes" 1024 s.Metrics.new_bytes;
  Alcotest.(check int) "cycle" 3 s.Metrics.cycle_lookups;
  Alcotest.(check int) "ser" 1 s.Metrics.ser_invocations;
  Alcotest.(check int) "msgs" 1 s.Metrics.msgs_sent;
  Alcotest.(check int) "bytes" 256 s.Metrics.bytes_sent;
  Alcotest.(check int) "type bytes" 7 s.Metrics.type_bytes;
  Alcotest.(check int) "allocs" 1 s.Metrics.allocs

let reset_zeroes () =
  let m = Metrics.create () in
  Metrics.add_bytes_sent m 100;
  Metrics.reset m;
  Alcotest.(check bool) "zero after reset" true (Metrics.snapshot m = Metrics.zero)

let diff_and_merge () =
  let m = Metrics.create () in
  Metrics.add_bytes_sent m 100;
  let s1 = Metrics.snapshot m in
  Metrics.add_bytes_sent m 50;
  Metrics.incr_allocs m;
  let s2 = Metrics.snapshot m in
  let d = Metrics.diff s2 s1 in
  Alcotest.(check int) "diff bytes" 50 d.Metrics.bytes_sent;
  Alcotest.(check int) "diff allocs" 1 d.Metrics.allocs;
  let merged = Metrics.merge s1 d in
  Alcotest.(check bool) "merge restores" true (merged = s2)

let concurrent_updates () =
  (* atomic counters must not lose updates across domains *)
  let m = Metrics.create () in
  let worker () =
    for _ = 1 to 10_000 do
      Metrics.incr_msgs_sent m
    done
  in
  let d = Domain.spawn worker in
  worker ();
  Domain.join d;
  Alcotest.(check int) "no lost updates" 20_000
    (Metrics.snapshot m).Metrics.msgs_sent

(* Build a snapshot whose every field holds a distinct value derived
   from [k].  The record literal (no [with], no wildcard) makes this
   test fail to compile whenever a counter is added to [snapshot]
   without extending it — the same exhaustiveness [merge]/[diff] rely
   on. *)
let mk_snapshot k =
  {
    Metrics.remote_rpcs = k + 1;
    local_rpcs = k + 2;
    reused_objs = k + 3;
    new_bytes = k + 4;
    cycle_lookups = k + 5;
    ser_invocations = k + 6;
    msgs_sent = k + 7;
    bytes_sent = k + 8;
    type_bytes = k + 9;
    allocs = k + 10;
    retries = k + 11;
    timeouts = k + 12;
    dup_drops = k + 13;
    acks_sent = k + 14;
    crashes = k + 15;
    restarts = k + 16;
    heartbeats_sent = k + 17;
    stale_drops = k + 18;
    suspects = k + 19;
    peer_downs = k + 20;
    call_retries = k + 21;
    failovers = k + 22;
    breaker_fastfails = k + 23;
    reply_cache_hits = k + 24;
    batches_sent = k + 25;
    batched_msgs = k + 26;
    unbatched_msgs = k + 27;
    outstanding_hwm = k + 28;
    tier_promotions = k + 29;
    tier_deopts = k + 30;
    plan_cache_hits = k + 31;
    plan_cache_misses = k + 32;
    bytes_copied = k + 42;
    pool_hits = k + 43;
    pool_misses = k + 44;
    arena_allocs = k + 49;
    arena_resets = k + 50;
    arena_fallbacks = k + 51;
    dispatches = k + 45;
    queue_rejects = k + 46;
    steals = k + 47;
    queue_depth_hwm = k + 48;
    batch_hist = Array.init Metrics.hist_buckets (fun i -> k + 33 + i);
    lat_hist = Array.init Metrics.lat_buckets (fun i -> k + 100 + i);
    (* keys sorted, values positive: [assoc_map2] drops zero entries and
       returns a key-sorted list, so structural equality holds *)
    site_calls = [ (1, k + 40); (7, k + 41) ];
  }

let prop_merge_diff_laws =
  QCheck.Test.make ~name:"merge/diff cover every counter (300 cases)"
    ~count:300
    QCheck.(pair small_nat small_nat)
    (fun (a, b) ->
      let sa = mk_snapshot a and sb = mk_snapshot b in
      Metrics.merge Metrics.zero sa = sa
      && Metrics.merge sa Metrics.zero = sa
      && Metrics.diff sa Metrics.zero = sa
      && Metrics.diff (Metrics.merge sa sb) sb = sa
      && Metrics.merge sa sb = Metrics.merge sb sa)

(* every mutator in the interface moves its counter, and [reset] puts
   every one of them back to zero *)
let every_counter_covered () =
  let m = Metrics.create () in
  Metrics.incr_remote_rpcs m;
  Metrics.incr_local_rpcs m;
  Metrics.add_reused_objs m 2;
  Metrics.add_new_bytes m 3;
  Metrics.add_cycle_lookups m 4;
  Metrics.incr_ser_invocations m;
  Metrics.incr_msgs_sent m;
  Metrics.add_bytes_sent m 5;
  Metrics.add_type_bytes m 6;
  Metrics.incr_allocs m;
  Metrics.incr_retries m;
  Metrics.incr_timeouts m;
  Metrics.incr_dup_drops m;
  Metrics.incr_acks_sent m;
  Metrics.incr_crashes m;
  Metrics.incr_restarts m;
  Metrics.incr_heartbeats_sent m;
  Metrics.incr_stale_drops m;
  Metrics.incr_suspects m;
  Metrics.incr_peer_downs m;
  Metrics.incr_call_retries m;
  Metrics.incr_failovers m;
  Metrics.incr_breaker_fastfails m;
  Metrics.incr_reply_cache_hits m;
  Metrics.record_batch m ~msgs:3;
  Metrics.incr_unbatched m;
  Metrics.record_outstanding m 7;
  Metrics.incr_tier_promotions m;
  Metrics.incr_tier_deopts m;
  Metrics.incr_plan_cache_hits m;
  Metrics.incr_plan_cache_misses m;
  Metrics.add_bytes_copied m 8;
  Metrics.incr_pool_hits m;
  Metrics.incr_pool_misses m;
  Metrics.incr_arena_allocs m;
  Metrics.incr_arena_resets m;
  Metrics.incr_arena_fallbacks m;
  Metrics.incr_dispatches m;
  Metrics.incr_queue_rejects m;
  Metrics.incr_steals m;
  Metrics.record_queue_depth m 9;
  Metrics.record_latency_ns m 1_500;
  Metrics.record_site_call m ~callsite:42;
  (* destructure without a wildcard: adding a snapshot field breaks
     this match until the test covers it *)
  let {
    Metrics.remote_rpcs;
    local_rpcs;
    reused_objs;
    new_bytes;
    cycle_lookups;
    ser_invocations;
    msgs_sent;
    bytes_sent;
    type_bytes;
    allocs;
    retries;
    timeouts;
    dup_drops;
    acks_sent;
    crashes;
    restarts;
    heartbeats_sent;
    stale_drops;
    suspects;
    peer_downs;
    call_retries;
    failovers;
    breaker_fastfails;
    reply_cache_hits;
    batches_sent;
    batched_msgs;
    unbatched_msgs;
    outstanding_hwm;
    tier_promotions;
    tier_deopts;
    plan_cache_hits;
    plan_cache_misses;
    bytes_copied;
    pool_hits;
    pool_misses;
    arena_allocs;
    arena_resets;
    arena_fallbacks;
    dispatches;
    queue_rejects;
    steals;
    queue_depth_hwm;
    batch_hist;
    lat_hist;
    site_calls;
  } =
    Metrics.snapshot m
  in
  List.iteri
    (fun i v ->
      if v <= 0 then Alcotest.failf "counter #%d not moved by its mutator" i)
    [
      remote_rpcs; local_rpcs; reused_objs; new_bytes; cycle_lookups;
      ser_invocations; msgs_sent; bytes_sent; type_bytes; allocs; retries;
      timeouts; dup_drops; acks_sent; crashes; restarts; heartbeats_sent;
      stale_drops; suspects; peer_downs; call_retries; failovers;
      breaker_fastfails; reply_cache_hits; batches_sent; batched_msgs;
      unbatched_msgs; outstanding_hwm; tier_promotions; tier_deopts;
      plan_cache_hits; plan_cache_misses; bytes_copied; pool_hits; pool_misses;
      arena_allocs; arena_resets; arena_fallbacks;
      dispatches; queue_rejects; steals; queue_depth_hwm;
    ];
  Alcotest.(check bool) "histogram moved" true
    (Array.exists (fun v -> v > 0) batch_hist);
  Alcotest.(check int) "latency sample recorded" 1 (Metrics.lat_count lat_hist);
  Alcotest.(check int) "latency sample in the right bucket" 1
    lat_hist.(Metrics.lat_bucket 1_500);
  Alcotest.(check (list (pair int int))) "site calls recorded"
    [ (42, 1) ] site_calls;
  Metrics.reset m;
  Alcotest.(check bool) "reset restores zero on every counter" true
    (Metrics.snapshot m = Metrics.zero)

(* --- latency histogram laws ------------------------------------- *)

let lat_hist_gen =
  QCheck.Gen.(
    array_size (return Metrics.lat_buckets) (int_bound 50)
    |> QCheck.make ~print:(fun a ->
           String.concat ";" (Array.to_list (Array.map string_of_int a))))

let prop_quantile_monotone =
  QCheck.Test.make ~name:"lat_quantile monotone in q, bounded by buckets"
    ~count:300
    QCheck.(pair lat_hist_gen (pair (int_bound 1000) (int_bound 1000)))
    (fun (hist, (ia, ib)) ->
      let qa = float_of_int (max 1 ia) /. 1000.0
      and qb = float_of_int (max 1 ib) /. 1000.0 in
      let lo = min qa qb and hi = max qa qb in
      let p_lo = Metrics.lat_quantile hist lo
      and p_hi = Metrics.lat_quantile hist hi in
      if Metrics.lat_count hist = 0 then p_lo = 0.0 && p_hi = 0.0
      else
        p_lo <= p_hi
        && p_hi <= Metrics.lat_bucket_upper_ns (Metrics.lat_buckets - 1))

let prop_hist_merge_assoc =
  QCheck.Test.make ~name:"snapshot merge is associative and commutative"
    ~count:300
    QCheck.(triple small_nat small_nat small_nat)
    (fun (a, b, c) ->
      let sa = mk_snapshot a and sb = mk_snapshot b and sc = mk_snapshot c in
      Metrics.merge (Metrics.merge sa sb) sc
      = Metrics.merge sa (Metrics.merge sb sc)
      && Metrics.merge sa sb = Metrics.merge sb sa)

(* four domains hammer [record_latency_ns] on private metrics; the
   merged histogram must hold every sample, and its quantiles must obey
   p50 <= p99 <= p999 *)
let parallel_recorders_merge () =
  let n_domains = 4 and per_domain = 5_000 in
  let parts = Array.init n_domains (fun _ -> Metrics.create ()) in
  let recorder i () =
    let st = Random.State.make [| 0xBEEF + i |] in
    for _ = 1 to per_domain do
      Metrics.record_latency_ns parts.(i) (1 + Random.State.int st 10_000_000)
    done
  in
  let ds =
    Array.init (n_domains - 1) (fun i -> Domain.spawn (recorder (i + 1)))
  in
  recorder 0 ();
  Array.iter Domain.join ds;
  let merged =
    Array.fold_left
      (fun acc m -> Metrics.merge acc (Metrics.snapshot m))
      Metrics.zero parts
  in
  Alcotest.(check int) "no sample lost in merge" (n_domains * per_domain)
    (Metrics.lat_count merged.Metrics.lat_hist);
  let q p = Metrics.lat_quantile merged.Metrics.lat_hist p in
  Alcotest.(check bool) "p50 <= p99" true (q 0.5 <= q 0.99);
  Alcotest.(check bool) "p99 <= p999" true (q 0.99 <= q 0.999)

(* one shared metrics record updated from two domains: per-bucket
   atomics must not lose counts *)
let concurrent_latency_updates () =
  let m = Metrics.create () in
  let worker () =
    for i = 1 to 10_000 do
      Metrics.record_latency_ns m i
    done
  in
  let d = Domain.spawn worker in
  worker ();
  Domain.join d;
  Alcotest.(check int) "no lost latency samples" 20_000
    (Metrics.lat_count (Metrics.snapshot m).Metrics.lat_hist)

let table_renders_aligned () =
  let s =
    Ascii_table.render ~headers:[ "name"; "value" ]
      [ [ "alpha"; "1" ]; [ "b"; "20000" ] ]
  in
  let lines = String.split_on_char '\n' s in
  let widths = List.map String.length (List.filter (fun l -> l <> "") lines) in
  (match widths with
  | w :: rest -> List.iter (fun w' -> Alcotest.(check int) "equal widths" w w') rest
  | [] -> Alcotest.fail "no output");
  Alcotest.(check bool) "contains header" true
    (let rec has i =
       i + 4 <= String.length s && (String.sub s i 4 = "name" || has (i + 1))
     in
     has 0)

let table_rejects_ragged_rows () =
  Alcotest.(check bool) "raises" true
    (try
       ignore (Ascii_table.render ~headers:[ "a"; "b" ] [ [ "only-one" ] ]);
       false
     with Invalid_argument _ -> true)

let table_alignment_modes () =
  let s =
    Ascii_table.render ~headers:[ "l"; "r" ]
      ~aligns:[ Ascii_table.Left; Ascii_table.Right ]
      [ [ "x"; "1" ]; [ "yy"; "22" ] ]
  in
  (* right-aligned column pads on the left *)
  Alcotest.(check bool) "right aligned" true
    (let rec has i =
       i + 4 <= String.length s && (String.sub s i 4 = "|  1" || has (i + 1))
     in
     has 0)

let suite =
  [
    ( "stats.metrics",
      [
        Alcotest.test_case "counters accumulate" `Quick counters_accumulate;
        Alcotest.test_case "reset" `Quick reset_zeroes;
        Alcotest.test_case "diff/merge" `Quick diff_and_merge;
        Alcotest.test_case "concurrent updates" `Quick concurrent_updates;
        Alcotest.test_case "every counter covered" `Quick every_counter_covered;
        Alcotest.test_case "parallel recorders merge" `Quick
          parallel_recorders_merge;
        Alcotest.test_case "concurrent latency updates" `Quick
          concurrent_latency_updates;
        Fixtures.qcheck_case prop_merge_diff_laws;
        Fixtures.qcheck_case prop_quantile_monotone;
        Fixtures.qcheck_case prop_hist_merge_assoc;
      ] );
    ( "stats.table",
      [
        Alcotest.test_case "aligned output" `Quick table_renders_aligned;
        Alcotest.test_case "ragged rows rejected" `Quick table_rejects_ragged_rows;
        Alcotest.test_case "alignment modes" `Quick table_alignment_modes;
      ] );
  ]
