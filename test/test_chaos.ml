(* PR 8: the chaos-hardened socket transport.  Determinism of the
   seeded injector (chaos adds no randomness of its own), the Sock
   handshake failure paths (none may kill the event loop), reconnection
   after a mid-stream sever, the RLIMIT_NOFILE-derived loopback
   ceiling, and the durable exactly-once property over real TCP as a
   QCheck property across seeds. *)

module Transport = Rmi_net.Transport
module Sock = Rmi_net.Sock
module Chaos = Rmi_net.Chaos
module Fault_sim = Rmi_net.Fault_sim
module Metrics = Rmi_stats.Metrics
module E = Rmi_harness.Experiment

let with_loopback ?chaos ~n f =
  let metrics = Metrics.create () in
  let t = Sock.create_loopback_t ?chaos ~n metrics in
  let net = Sock.pack t in
  Fun.protect ~finally:(fun () -> Transport.shutdown net) (fun () -> f t net)

(* deadline-poll an assertion that needs background threads (event
   loop, reconnectors) to make progress *)
let eventually ?(seconds = 10.0) msg pred =
  let deadline = Unix.gettimeofday () +. seconds in
  let rec go () =
    if pred () then ()
    else if Unix.gettimeofday () >= deadline then
      Alcotest.failf "timed out waiting for %s" msg
    else begin
      Unix.sleepf 0.005;
      go ()
    end
  in
  go ()

let roundtrip ?(seconds = 10.0) net ~src ~dest tag =
  Transport.send net ~src ~dest (Bytes.of_string tag);
  let deadline = Unix.gettimeofday () +. seconds in
  let rec go () =
    match Transport.recv_deadline net ~self:dest ~seconds:0.2 with
    | Some m when Bytes.to_string m = tag -> ()
    | Some _ -> go ()  (* stale frame from an earlier phase *)
    | None ->
        if Unix.gettimeofday () >= deadline then
          Alcotest.failf "frame %S never arrived at %d" tag dest
        else begin
          Transport.send net ~src ~dest (Bytes.of_string tag);
          go ()
        end
  in
  go ()

(* ------------------------------------------------------------------ *)
(* determinism                                                         *)
(* ------------------------------------------------------------------ *)

(* the chaos engine's frame schedule is byte-identical to the bare
   simulator's: wrapping consumes no extra randomness *)
let test_sim_parity () =
  List.iter
    (fun seed ->
      let c, bare = Chaos.sim_parity ~seed ~n:3 ~frames:250 () in
      Alcotest.(check string)
        (Printf.sprintf "seed %d: chaos digest = bare Fault_sim digest" seed)
        bare c)
    [ 42; 1234; 90210 ]

(* each digest is a pure function of the seed: replays collide, seeds
   separate *)
let test_replay_identical () =
  let run seed = fst (Chaos.sim_parity ~seed ~n:2 ~frames:200 ()) in
  Alcotest.(check string) "same seed, same digest" (run 7) (run 7);
  Alcotest.(check bool) "different seeds diverge" false
    (String.equal (run 7) (run 8))

(* the seeded connection plan is deterministic, ordered, and in range *)
let test_seeded_plan () =
  let p1 = Chaos.seeded_plan ~seed:42 ~n:4 () in
  let p2 = Chaos.seeded_plan ~seed:42 ~n:4 () in
  Alcotest.(check bool) "same seed, same plan" true (p1 = p2);
  Alcotest.(check bool) "plan is non-empty" true (p1 <> []);
  List.iter
    (fun { Chaos.at; action } ->
      Alcotest.(check bool) "fire frame is non-negative" true (at >= 0);
      match action with
      | Chaos.Sever { a; b } ->
          Alcotest.(check bool) "sever endpoints in range and distinct" true
            (a >= 0 && a < 4 && b >= 0 && b < 4 && a <> b)
      | Chaos.Stall { machine; frames } ->
          Alcotest.(check bool) "stall machine in range, length positive" true
            (machine >= 1 && machine < 4 && frames > 0))
    p1

(* ------------------------------------------------------------------ *)
(* handshake failure paths: none may kill the event loop               *)
(* ------------------------------------------------------------------ *)

let put32 b off v =
  Bytes.set b off (Char.chr ((v lsr 24) land 0xff));
  Bytes.set b (off + 1) (Char.chr ((v lsr 16) land 0xff));
  Bytes.set b (off + 2) (Char.chr ((v lsr 8) land 0xff));
  Bytes.set b (off + 3) (Char.chr (v land 0xff))

let dial_raw port =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_of_string "127.0.0.1", port));
  fd

(* a hello naming a machine id outside the mesh: the accepter closes
   the socket and keeps serving the real peers *)
let test_malformed_hello () =
  with_loopback ~n:2 (fun t net ->
      let port = Sock.listen_port t 0 in
      let fd = dial_raw port in
      let hello = Bytes.create 4 in
      put32 hello 0 99;
      ignore (Unix.write fd hello 0 4 : int);
      (* the loop answers a bad hello by closing: observe the EOF *)
      eventually "bad-hello socket closed by the event loop" (fun () ->
          match Unix.select [ fd ] [] [] 0.05 with
          | [ _ ], _, _ -> (
              match Unix.read fd (Bytes.create 1) 0 1 with
              | 0 -> true
              | _ -> false
              | exception Unix.Unix_error _ -> true)
          | _ -> false);
      (try Unix.close fd with Unix.Unix_error _ -> ());
      roundtrip net ~src:0 ~dest:1 "after-bad-hello";
      roundtrip net ~src:1 ~dest:0 "after-bad-hello-rev")

(* connect, then die without ever sending the hello: the pending
   accept is reaped, the mesh keeps working *)
let test_die_before_hello () =
  with_loopback ~n:2 (fun t net ->
      let port = Sock.listen_port t 0 in
      let fd = dial_raw port in
      (* give the accept loop a chance to see the connection first *)
      Unix.sleepf 0.02;
      Unix.close fd;
      roundtrip net ~src:0 ~dest:1 "after-silent-death";
      roundtrip net ~src:1 ~dest:0 "after-silent-death-rev")

(* a duplicate connect claiming an already-connected peer id: the
   newest conn wins (the link generation bumps), and the mesh heals
   back to a working state through reconnection *)
let test_duplicate_connect () =
  with_loopback ~n:2 (fun t net ->
      let g0 = Sock.link_generation t ~owner:0 ~peer:1 in
      let port = Sock.listen_port t 0 in
      let fd = dial_raw port in
      let hello = Bytes.create 4 in
      put32 hello 0 1;
      ignore (Unix.write fd hello 0 4 : int);
      eventually "duplicate connect replaces the live conn" (fun () ->
          Sock.link_generation t ~owner:0 ~peer:1 > g0);
      (* drop our impostor socket; the real machine 1 redials and the
         link must settle back to carrying traffic *)
      Unix.close fd;
      roundtrip net ~src:0 ~dest:1 "after-duplicate-connect";
      roundtrip net ~src:1 ~dest:0 "after-duplicate-connect-rev")

(* ------------------------------------------------------------------ *)
(* sever / reconnect                                                   *)
(* ------------------------------------------------------------------ *)

let test_sever_reconnects () =
  with_loopback ~n:2 (fun t net ->
      roundtrip net ~src:0 ~dest:1 "before-sever";
      let g10 = Sock.link_generation t ~owner:1 ~peer:0 in
      Sock.sever t ~a:0 ~b:1;
      Alcotest.(check bool) "sever downs the link" true
        (Transport.peer_health net ~self:1 ~peer:0 = Transport.Down
        || Sock.link_generation t ~owner:1 ~peer:0 > g10);
      eventually "higher id redials after a sever" (fun () ->
          Sock.link_generation t ~owner:1 ~peer:0 > g10);
      roundtrip net ~src:0 ~dest:1 "after-sever";
      roundtrip net ~src:1 ~dest:0 "after-sever-rev")

(* ------------------------------------------------------------------ *)
(* the RLIMIT_NOFILE-derived loopback ceiling                          *)
(* ------------------------------------------------------------------ *)

let test_loopback_ceiling () =
  let cap = Sock.max_loopback_machines () in
  Alcotest.(check bool) "the budget admits at least a pair" true (cap >= 2);
  Alcotest.(check bool) "the ceiling is capped at 512" true (cap <= 512);
  Alcotest.check_raises "n beyond the ceiling is rejected up front"
    (Invalid_argument
       (Printf.sprintf
          "Sock.create_loopback: a %d-machine mesh needs more descriptors \
           than this process's RLIMIT_NOFILE budget allows (max %d machines)"
          100_000 cap))
    (fun () ->
      ignore
        (Sock.create_loopback ~n:100_000 (Metrics.create ()) : Transport.t))

(* ------------------------------------------------------------------ *)
(* exactly-once over real TCP, property-tested across seeds            *)
(* ------------------------------------------------------------------ *)

let prop_exactly_once =
  QCheck.Test.make ~count:8 ~name:"durable chaos is exactly-once over TCP"
    QCheck.(make Gen.(int_bound 1_000_000))
    (fun seed -> E.chaos_exactly_once ~calls:10 ~window:4 ~seed ())

let suite =
  [
    ( "chaos transport",
      [
        Alcotest.test_case "chaos/sim schedule parity" `Quick test_sim_parity;
        Alcotest.test_case "seeded replay identical" `Quick
          test_replay_identical;
        Alcotest.test_case "seeded connection plan" `Quick test_seeded_plan;
        Alcotest.test_case "malformed hello survives" `Quick
          test_malformed_hello;
        Alcotest.test_case "die before hello survives" `Quick
          test_die_before_hello;
        Alcotest.test_case "duplicate connect replaces" `Quick
          test_duplicate_connect;
        Alcotest.test_case "sever then reconnect" `Quick test_sever_reconnects;
        Alcotest.test_case "loopback machine ceiling" `Quick
          test_loopback_ceiling;
        QCheck_alcotest.to_alcotest prop_exactly_once;
      ] );
  ]
