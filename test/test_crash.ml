(* Crash/restart robustness: the PR-3 stack end to end.  A seeded
   crash schedule kills and revives machines mid-workload; the durable
   reply cache must keep retried calls exactly-once, an amnesiac victim
   must demonstrably lose that guarantee, never-restarting peers must
   surface as Peer_down / Rpc_timeout instead of hangs, replicated
   objects must fail over, and stale-incarnation frames must be
   fenced. *)

open Rmi_runtime
module Value = Rmi_serial.Value
module Metrics = Rmi_stats.Metrics
module Fault_sim = Rmi_net.Fault_sim
module Cluster = Rmi_net.Cluster

let meta = Rmi_serial.Class_meta.make [ ("Box", [ ("v", Jir.Types.Tint) ]) ]

let m_echo = 1

let box v =
  let b = Value.new_obj ~cls:0 ~nfields:1 in
  b.Value.fields.(0) <- Value.Int v;
  Value.Obj b

(* a config whose RPC layer can ride through a restart outage *)
let patient =
  Config.with_failover
    { Config.default_failover with Config.max_call_retries = 4 }
    (Config.with_reliable Config.class_)

(* [calls] windowed echo RMIs 0 -> 1 under an optional crash schedule.
   Returns (metrics snapshot, reply checksum, per-request execution
   counts, failed calls). *)
let run_workload ?sim ?(config = patient) ?(n = 2) ?(calls = 24) ?(window = 4)
    () =
  let metrics = Metrics.create () in
  let fabric =
    Fabric.create ~mode:Fabric.Sync ?faults:sim ~n ~meta ~config
      ~plans:(Hashtbl.create 4) ~metrics ()
  in
  let execs : (int, int) Hashtbl.t = Hashtbl.create 64 in
  Node.export (Fabric.node fabric 1) ~obj:0 ~meth:m_echo ~has_ret:true
    (fun args ->
      match args.(0) with
      | Value.Obj o -> (
          match o.Value.fields.(0) with
          | Value.Int v ->
              Hashtbl.replace execs v
                (1 + Option.value ~default:0 (Hashtbl.find_opt execs v));
              Some (Value.Int (v + 1))
          | _ -> failwith "bad box")
      | _ -> failwith "bad arg");
  let caller = Fabric.node fabric 0 in
  let dest = Remote_ref.make ~machine:1 ~obj:0 in
  let sum = ref 0 and failed = ref 0 in
  Fabric.run fabric (fun _ ->
      let i = ref 1 in
      while !i <= calls do
        let k = min window (calls - !i + 1) in
        let futures =
          List.init k (fun j ->
              Node.call_async caller ~dest ~meth:m_echo ~callsite:1
                ~has_ret:true [| box (!i + j) |])
        in
        List.iter
          (fun f ->
            match Node.Future.await f with
            | Some (Value.Int v) -> sum := !sum + v
            | Some _ | None -> incr failed
            | exception (Node.Rpc_timeout _ | Node.Peer_down _) -> incr failed)
          futures;
        i := !i + k
      done);
  (Metrics.snapshot metrics, !sum, execs, !failed)

let expected_sum calls =
  (* replies are v+1 for v in 1..calls *)
  (calls * (calls + 3)) / 2

let total_execs execs = Hashtbl.fold (fun _ c acc -> acc + c) execs 0

let crash_sim ~seed plan =
  let s = Fault_sim.create ~seed ~n:2 Fault_sim.lossless in
  Fault_sim.set_crash_plan s plan;
  s

(* --- durable crash/restart rides through, exactly-once --- *)

let durable_crash_restart_is_exactly_once () =
  let calls = 40 in
  let sim =
    crash_sim ~seed:3
      [
        {
          Fault_sim.victim = 1;
          crash_at = 12;
          restart_after = Some 10;
          durability = Fault_sim.Durable;
        };
      ]
  in
  let stats, sum, execs, failed = run_workload ~sim ~calls () in
  Alcotest.(check int) "crash fired" 1 stats.Metrics.crashes;
  Alcotest.(check int) "restart fired" 1 stats.Metrics.restarts;
  Alcotest.(check int) "no failed calls" 0 failed;
  Alcotest.(check int) "checksum matches fault-free arithmetic"
    (expected_sum calls) sum;
  Alcotest.(check int) "every request executed exactly once" calls
    (total_execs execs);
  Hashtbl.iter
    (fun v c ->
      if c <> 1 then
        Alcotest.failf "request %d executed %d times under a durable crash" v c)
    execs

(* --- amnesia demonstrably violates exactly-once; durable at the same
   crash point does not --- *)

let amnesia_overexecutes_where_durable_does_not () =
  let calls = 30 in
  (* scan the crash point until the amnesiac victim provably
     re-executes a retried request: the crash must land between the
     handler running and the reply surviving, so a fixed point is not
     guaranteed — but some point in the first few dozen frames is *)
  let found = ref None in
  let at = ref 1 in
  while !found = None && !at <= 80 do
    let sim =
      crash_sim ~seed:3
        [
          {
            Fault_sim.victim = 1;
            crash_at = !at;
            restart_after = Some 6;
            durability = Fault_sim.Amnesia;
          };
        ]
    in
    let stats, _, execs, failed = run_workload ~sim ~calls () in
    if stats.Metrics.crashes = 1 && failed = 0 && total_execs execs > calls
    then found := Some !at;
    incr at
  done;
  match !found with
  | None ->
      Alcotest.fail
        "no crash point made the amnesiac victim re-execute a request"
  | Some crash_at ->
      (* same crash point, durable victim: exactly-once holds *)
      let sim =
        crash_sim ~seed:3
          [
            {
              Fault_sim.victim = 1;
              crash_at;
              restart_after = Some 6;
              durability = Fault_sim.Durable;
            };
          ]
      in
      let stats, sum, execs, failed = run_workload ~sim ~calls () in
      Alcotest.(check int) "durable: crash fired" 1 stats.Metrics.crashes;
      Alcotest.(check int) "durable: no failures" 0 failed;
      Alcotest.(check int) "durable: checksum" (expected_sum calls) sum;
      Alcotest.(check int) "durable: exactly-once" calls (total_execs execs);
      Alcotest.(check bool) "durable: reply cache was exercised" true
        (stats.Metrics.reply_cache_hits >= 1)

(* --- a peer that never restarts surfaces Peer_down, not a hang --- *)

let never_restarting_peer_is_peer_down () =
  let sim =
    crash_sim ~seed:3
      [
        {
          Fault_sim.victim = 1;
          crash_at = 6;
          restart_after = None;
          durability = Fault_sim.Durable;
        };
      ]
  in
  let stats, _, _, failed = run_workload ~sim ~calls:12 ~window:1 () in
  Alcotest.(check int) "crash fired" 1 stats.Metrics.crashes;
  Alcotest.(check int) "no restart" 0 stats.Metrics.restarts;
  Alcotest.(check bool) "calls after the crash failed" true (failed >= 1);
  Alcotest.(check bool) "rpc retries were spent first" true
    (stats.Metrics.call_retries >= 1)

(* --- a tiny per-call deadline fails fast with Rpc_timeout --- *)

let tiny_deadline_times_out_promptly () =
  let metrics = Metrics.create () in
  let sim =
    crash_sim ~seed:3
      [
        {
          Fault_sim.victim = 1;
          crash_at = 1;
          restart_after = None;
          durability = Fault_sim.Durable;
        };
      ]
  in
  (* effectively unlimited RPC retries: only the deadline can fire *)
  let config =
    Config.with_failover
      { Config.default_failover with Config.max_call_retries = 1000 }
      (Config.with_reliable Config.class_)
  in
  let fabric =
    Fabric.create ~mode:Fabric.Sync ~faults:sim ~n:2 ~meta ~config
      ~plans:(Hashtbl.create 4) ~metrics ()
  in
  Node.export (Fabric.node fabric 1) ~obj:0 ~meth:m_echo ~has_ret:true
    (fun args -> Some args.(0));
  let caller = Fabric.node fabric 0 in
  let t0 = Unix.gettimeofday () in
  Fabric.run fabric (fun _ ->
      Alcotest.(check bool) "Rpc_timeout raised" true
        (try
           ignore
             (Node.call ~deadline:0.05 caller
                ~dest:(Remote_ref.make ~machine:1 ~obj:0)
                ~meth:m_echo ~callsite:1 ~has_ret:true [| box 1 |]);
           false
         with Node.Rpc_timeout _ -> true));
  Alcotest.(check bool) "future settled promptly, no hang" true
    (Unix.gettimeofday () -. t0 < 5.0)

(* --- replicated objects fail over when the primary dies --- *)

let replicated_object_fails_over () =
  let metrics = Metrics.create () in
  let sim =
    let s = Fault_sim.create ~seed:3 ~n:3 Fault_sim.lossless in
    Fault_sim.set_crash_plan s
      [
        {
          Fault_sim.victim = 1;
          crash_at = 1;
          restart_after = None;
          durability = Fault_sim.Durable;
        };
      ];
    s
  in
  let fabric =
    Fabric.create ~mode:Fabric.Sync ~faults:sim ~n:3 ~meta
      ~config:(Config.with_reliable Config.class_) ~plans:(Hashtbl.create 4)
      ~metrics ()
  in
  let registry = Registry.create fabric in
  let spec =
    {
      Registry.meth = m_echo;
      has_ret = true;
      handler =
        (fun args ->
          match args.(0) with
          | Value.Obj o -> (
              match o.Value.fields.(0) with
              | Value.Int v -> Some (Value.Int (v + 1))
              | _ -> failwith "bad box")
          | _ -> failwith "bad arg");
    }
  in
  let dest = Registry.new_replicated registry ~primary:1 ~replica:2 [ spec ] in
  let caller = Fabric.node fabric 0 in
  Fabric.run fabric (fun _ ->
      match
        Node.call caller ~dest ~meth:m_echo ~callsite:1 ~has_ret:true
          [| box 41 |]
      with
      | Some (Value.Int v) -> Alcotest.(check int) "served by replica" 42 v
      | _ -> Alcotest.fail "no reply despite replica");
  let s = Metrics.snapshot metrics in
  Alcotest.(check bool) "failover counted" true (s.Metrics.failovers >= 1);
  Alcotest.(check int) "primary crash observed" 1 s.Metrics.crashes

(* --- frames from a dead incarnation are fenced --- *)

let stale_epoch_frames_are_fenced () =
  let calls = 24 in
  let metrics = Metrics.create () in
  let sim =
    crash_sim ~seed:3
      [
        {
          Fault_sim.victim = 1;
          crash_at = 8;
          restart_after = Some 6;
          durability = Fault_sim.Durable;
        };
      ]
  in
  let fabric =
    Fabric.create ~mode:Fabric.Sync ~faults:sim ~n:2 ~meta ~config:patient
      ~plans:(Hashtbl.create 4) ~metrics ()
  in
  Node.export (Fabric.node fabric 1) ~obj:0 ~meth:m_echo ~has_ret:true
    (fun args ->
      match args.(0) with
      | Value.Obj o -> (
          match o.Value.fields.(0) with
          | Value.Int v -> Some (Value.Int (v + 1))
          | _ -> failwith "bad box")
      | _ -> failwith "bad arg");
  let caller = Fabric.node fabric 0 in
  let dest = Remote_ref.make ~machine:1 ~obj:0 in
  let cluster = Fabric.cluster fabric in
  Fabric.run fabric (fun _ ->
      let sum = ref 0 in
      for i = 1 to calls do
        match
          Node.call caller ~dest ~meth:m_echo ~callsite:1 ~has_ret:true
            [| box i |]
        with
        | Some (Value.Int v) -> sum := !sum + v
        | _ -> Alcotest.fail "call failed"
      done;
      Alcotest.(check int) "workload checksum" (expected_sum calls) !sum;
      Alcotest.(check int) "machine 1 restarted into epoch 1" 1
        (Cluster.self_epoch cluster 1);
      (* forge a data frame from machine 1's dead incarnation (epoch 0)
         and deliver it straight into machine 0's mailbox *)
      Cluster.inject_frame cluster ~dest:0
        (Rmi_net.Envelope.encode ~kind:Rmi_net.Envelope.Data ~src:1 ~epoch:0
           ~lseq:0
           ~payload:(Bytes.of_string "ghost of incarnation 0")
           ());
      let before = (Metrics.snapshot metrics).Metrics.stale_drops in
      (match Cluster.try_recv cluster ~self:0 with
      | None -> ()
      | Some b ->
          Alcotest.failf "stale frame leaked through the fence: %S"
            (Bytes.to_string b));
      Alcotest.(check bool) "stale frame counted" true
        ((Metrics.snapshot metrics).Metrics.stale_drops > before);
      (* the live path is unaffected *)
      match
        Node.call caller ~dest ~meth:m_echo ~callsite:1 ~has_ret:true
          [| box 100 |]
      with
      | Some (Value.Int v) -> Alcotest.(check int) "live path intact" 101 v
      | _ -> Alcotest.fail "live call failed after fencing")

(* --- heartbeat failure detector: conviction and recovery --- *)

let detector_convicts_silent_peer_then_recovers () =
  let metrics = Metrics.create () in
  let cluster =
    Cluster.create ~transport:(Cluster.Reliable Cluster.default_params) ~n:2
      metrics
  in
  Cluster.set_detector cluster
    { Cluster.ping_every = 2; suspect_after = 3; down_after = 6 };
  let events = ref [] in
  Cluster.on_peer_event cluster (fun ~self ~peer e ->
      events := (self, peer, e) :: !events);
  (* machine 1 exists but never drains its mailbox: from machine 0's
     side it is silent and must be demoted Suspect then Down *)
  for _ = 1 to 16 do
    ignore (Cluster.idle cluster ~self:0)
  done;
  Alcotest.(check bool) "suspected" true
    (List.mem (0, 1, Cluster.Peer_suspected) !events);
  Alcotest.(check bool) "confirmed down" true
    (List.mem (0, 1, Cluster.Peer_confirmed_down) !events);
  (match Cluster.peer_health cluster ~self:0 ~peer:1 with
  | Cluster.Down -> ()
  | _ -> Alcotest.fail "peer 1 should be Down");
  let s = Metrics.snapshot metrics in
  Alcotest.(check bool) "pings were sent" true (s.Metrics.heartbeats_sent >= 1);
  Alcotest.(check bool) "suspicion counted" true (s.Metrics.suspects >= 1);
  Alcotest.(check bool) "conviction counted" true (s.Metrics.peer_downs >= 1);
  (* machine 1 wakes up: draining its mailbox answers the pings with
     pongs; receiving a pong rehabilitates the peer *)
  while Cluster.try_recv cluster ~self:1 <> None do
    ()
  done;
  for _ = 1 to 4 do
    ignore (Cluster.try_recv cluster ~self:0)
  done;
  Alcotest.(check bool) "recovered event" true
    (List.mem (0, 1, Cluster.Peer_recovered) !events);
  match Cluster.peer_health cluster ~self:0 ~peer:1 with
  | Cluster.Alive -> ()
  | _ -> Alcotest.fail "peer 1 should be Alive again"

(* --- property: durable crash/restart schedules preserve fault-free
   results and exactly-once over hundreds of seeds --- *)

let prop_durable_crash_equals_fault_free =
  QCheck.Test.make ~name:"300 seeds: durable crash/restart = fault-free"
    ~count:300
    QCheck.(small_nat)
    (fun salt ->
      let seed = (salt * 7919) + 13 in
      let calls = 24 in
      let sim = Fault_sim.create ~seed ~n:2 Fault_sim.lossless in
      Fault_sim.set_crash_plan sim
        (Fault_sim.seeded_crash_plan ~seed ~n:2 ~crashes:1
           ~durability:Fault_sim.Durable ());
      let stats, sum, execs, failed = run_workload ~sim ~calls () in
      failed = 0
      && sum = expected_sum calls
      && total_execs execs = calls
      && Hashtbl.fold (fun _ c ok -> ok && c = 1) execs true
      && stats.Metrics.crashes = 1)

let suite =
  [
    ( "crash",
      [
        Alcotest.test_case "durable crash/restart is exactly-once" `Quick
          durable_crash_restart_is_exactly_once;
        Alcotest.test_case "amnesia over-executes, durable does not" `Quick
          amnesia_overexecutes_where_durable_does_not;
        Alcotest.test_case "never-restarting peer -> Peer_down" `Quick
          never_restarting_peer_is_peer_down;
        Alcotest.test_case "tiny deadline -> prompt Rpc_timeout" `Quick
          tiny_deadline_times_out_promptly;
        Alcotest.test_case "replicated object fails over" `Quick
          replicated_object_fails_over;
        Alcotest.test_case "stale-epoch frames fenced" `Quick
          stale_epoch_frames_are_fenced;
        Alcotest.test_case "detector convicts silent peer, then recovers"
          `Quick detector_convicts_silent_peer_then_recovers;
        Fixtures.qcheck_case prop_durable_crash_equals_fault_free;
      ] );
  ]
