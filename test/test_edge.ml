(* Edge-case batteries: typechecker error paths, interpreter runtime
   errors, remaining wire/codec corners. *)

open Jir
module B = Builder
module Value = Rmi_serial.Value
module Codec = Rmi_serial.Codec
module Msgbuf = Rmi_wire.Msgbuf
module Metrics = Rmi_stats.Metrics
module Plan = Rmi_core.Plan

(* --- typechecker negatives ------------------------------------------- *)

(* build a tiny world and then patch an instruction in to check that the
   validator flags it *)
let world () =
  let b = B.create () in
  let box = B.declare_class b "Box" in
  let fv = B.add_field b box "v" Tint in
  let other = B.declare_class b "Other" in
  let fo = B.add_field b other "o" (Tobject other) in
  let st = B.declare_static b "s" Tint in
  let m = B.declare_method b ~name:"m" ~params:[ Tint; Tobject box ] ~ret:Tint () in
  B.define b m (fun mb -> B.ret mb (Some (Int 0)));
  (B.finish b, box, other, fv, fo, st, m)

let patch prog mid instrs term =
  let m = Program.method_decl prog mid in
  m.Program.blocks.(0) <- { Instr.phis = []; body = instrs; term }

let expect_error what prog =
  Alcotest.(check bool) (what ^ " rejected") true (Typecheck.check prog <> [])

let typecheck_negative_battery () =
  let mk () = world () in
  (* int stored into object field of the wrong type *)
  let prog, _, other, fv, _, _, m = mk () in
  patch prog m
    [ Instr.Alloc { dst = 2; cls = other; site = 0 };
      Instr.Store_field { obj = 2; fld = fv; src = Instr.Int 1 } ]
    (Instr.Ret (Some (Instr.Int 0)));
  (* var 2 has type Tint from the original var table: also wrong, good *)
  expect_error "field store to unrelated class" prog;
  (* branch on a non-boolean *)
  let prog, _, _, _, _, _, m = mk () in
  patch prog m [] (Instr.Br { cond = Instr.Int 1; ifso = 0; ifnot = 0 });
  expect_error "non-bool branch" prog;
  (* jump out of range *)
  let prog, _, _, _, _, _, m = mk () in
  patch prog m [] (Instr.Jmp 99);
  expect_error "label out of range" prog;
  (* returning an object from an int method *)
  let prog, _, _, _, _, _, m = mk () in
  patch prog m [] (Instr.Ret (Some (Instr.Var 1)));
  expect_error "return type mismatch" prog;
  (* void method returning a value is checked from the other side *)
  let prog, _, _, _, _, _, m = mk () in
  patch prog m [] (Instr.Ret None);
  expect_error "missing return value" prog;
  (* bad static id *)
  let prog, _, _, _, _, _, m = mk () in
  patch prog m
    [ Instr.Store_static { st = 42; src = Instr.Int 1 } ]
    (Instr.Ret (Some (Instr.Int 0)));
  expect_error "bad static id" prog;
  (* null into a primitive *)
  let prog, _, _, _, _, st, m = mk () in
  patch prog m
    [ Instr.Store_static { st; src = Instr.Null } ]
    (Instr.Ret (Some (Instr.Int 0)));
  expect_error "null into int static" prog;
  (* arithmetic on mixed operand types *)
  let prog, _, _, _, _, _, m = mk () in
  patch prog m
    [ Instr.Binop { dst = 0; op = Instr.Add; lhs = Instr.Int 1; rhs = Instr.Double 2.0 } ]
    (Instr.Ret (Some (Instr.Int 0)));
  expect_error "mixed arithmetic" prog

(* --- interpreter runtime errors --------------------------------------- *)

let interp_runtime_errors () =
  let b = B.create () in
  let box = B.declare_class b "Box" in
  let fv = B.add_field b box "v" Tint in
  let div = B.declare_method b ~name:"div" ~params:[ Tint; Tint ] ~ret:Tint () in
  B.define b div (fun mb ->
      let d = B.binop mb Instr.Div (Var (B.param mb 0)) (Var (B.param mb 1)) in
      B.ret mb (Some (Var d)));
  let deref = B.declare_method b ~name:"deref" ~params:[ Tobject box ] ~ret:Tint () in
  B.define b deref (fun mb ->
      let v = B.load_field mb (B.param mb 0) fv in
      B.ret mb (Some (Var v)));
  let oob = B.declare_method b ~name:"oob" ~params:[ Tint ] ~ret:Tdouble () in
  B.define b oob (fun mb ->
      let a = B.alloc_array mb Tdouble (Int 2) in
      let v = B.load_elem mb a (Var (B.param mb 0)) in
      B.ret mb (Some (Var v)));
  let neg = B.declare_method b ~name:"neg_len" ~params:[] ~ret:Tvoid () in
  B.define b neg (fun mb ->
      let a = B.alloc_array mb Tint (Int (-3)) in
      ignore a;
      B.ret mb None);
  let prog = B.finish b in
  Typecheck.check_exn prog;
  let st = Interp.create prog in
  let raises name f =
    Alcotest.(check bool) name true
      (try
         ignore (f ());
         false
       with Interp.Runtime_error _ -> true)
  in
  (match Interp.run st div [ Interp.Vint 10; Interp.Vint 2 ] with
  | Interp.Vint 5 -> ()
  | _ -> Alcotest.fail "div sanity");
  raises "division by zero" (fun () -> Interp.run st div [ Interp.Vint 1; Interp.Vint 0 ]);
  raises "null dereference" (fun () -> Interp.run st deref [ Interp.Vnull ]);
  raises "index out of bounds" (fun () -> Interp.run st oob [ Interp.Vint 5 ]);
  raises "negative index" (fun () -> Interp.run st oob [ Interp.Vint (-1) ]);
  raises "negative array length" (fun () -> Interp.run st neg [])

(* --- wire corners ------------------------------------------------------ *)

let prop_int_slice_roundtrip =
  QCheck.Test.make ~name:"int slices roundtrip" ~count:300
    QCheck.(list int)
    (fun xs ->
      let a = Array.of_list xs in
      let w = Msgbuf.create_writer () in
      Msgbuf.write_int_slice w a 0 (Array.length a);
      let b = Array.make (Array.length a) 0 in
      Msgbuf.read_int_slice (Msgbuf.reader_of_writer w) b 0 (Array.length b);
      a = b)

let slice_bounds_checked () =
  let w = Msgbuf.create_writer () in
  let a = Array.make 4 0.0 in
  Alcotest.(check bool) "writer oob" true
    (try
       Msgbuf.write_double_slice w a 2 4;
       false
     with Invalid_argument _ -> true);
  Msgbuf.write_double_slice w a 0 4;
  let r = Msgbuf.reader_of_writer w in
  Alcotest.(check bool) "reader oob" true
    (try
       Msgbuf.read_double_slice r a 2 4;
       false
     with Invalid_argument _ -> true)

(* --- codec corners ------------------------------------------------------ *)

let meta =
  Rmi_serial.Class_meta.make
    [ ("Holder", [ ("name", Jir.Types.Tstring); ("flags", Jir.Types.Tarray Jir.Types.Tbool) ]) ]

let string_and_bool_array_fields () =
  let flags = Value.new_rarr Jir.Types.Tbool 3 in
  flags.Value.ra.(0) <- Value.Bool true;
  flags.Value.ra.(1) <- Value.Bool false;
  flags.Value.ra.(2) <- Value.Bool true;
  let o = Value.new_obj ~cls:0 ~nfields:2 in
  o.Value.fields.(0) <- Value.Str "héllo\nworld";
  o.Value.fields.(1) <- Value.Rarr flags;
  let step =
    Plan.S_obj
      { cls = 0;
        fields = [| Plan.S_string; Plan.S_obj_array { elem = Plan.S_bool } |] }
  in
  let m = Metrics.create () in
  let w = Msgbuf.create_writer () in
  Codec.write_step (Codec.make_wctx meta m ~cycle:false) w step (Value.Obj o);
  let got =
    Codec.read_step
      (Codec.make_rctx meta m ~cycle:false)
      (Msgbuf.reader_of_writer w) step ~cand:Value.Null
  in
  match Rmi_serial.Equality.check ~expected:(Value.Obj o) ~actual:got with
  | Ok () -> ()
  | Error msg -> Alcotest.fail msg

let null_string_field () =
  let o = Value.new_obj ~cls:0 ~nfields:2 in
  (* name left Null, flags left Null *)
  let step =
    Plan.S_obj
      { cls = 0;
        fields = [| Plan.S_string; Plan.S_obj_array { elem = Plan.S_bool } |] }
  in
  let m = Metrics.create () in
  let w = Msgbuf.create_writer () in
  Codec.write_step (Codec.make_wctx meta m ~cycle:false) w step (Value.Obj o);
  let got =
    Codec.read_step
      (Codec.make_rctx meta m ~cycle:false)
      (Msgbuf.reader_of_writer w) step ~cand:Value.Null
  in
  match got with
  | Value.Obj o' ->
      Alcotest.(check bool) "null name" true (o'.Value.fields.(0) = Value.Null);
      Alcotest.(check bool) "null flags" true (o'.Value.fields.(1) = Value.Null)
  | v -> Alcotest.failf "bad %a" Value.pp v

let value_introspection_helpers () =
  let o = Value.new_obj ~cls:0 ~nfields:2 in
  o.Value.fields.(0) <- Value.Str "abc";
  let shared = Value.new_darr 4 in
  o.Value.fields.(1) <- Value.Darr shared;
  Alcotest.(check int) "nodes: obj + str + darr" 3 (Value.count_nodes (Value.Obj o));
  (* 16+2*8 for the object, 16+3 for the string, 16+32 for the array *)
  Alcotest.(check int) "byte size" ((16 + 16) + (16 + 3) + (16 + 32))
    (Value.byte_size (Value.Obj o));
  Alcotest.(check bool) "identity for heap values" true
    (Value.identity (Value.Obj o) <> None);
  Alcotest.(check bool) "no identity for ints" true (Value.identity (Value.Int 1) = None)

let suite =
  [
    ( "edge.typecheck",
      [ Alcotest.test_case "negative battery" `Quick typecheck_negative_battery ] );
    ( "edge.interp",
      [ Alcotest.test_case "runtime errors" `Quick interp_runtime_errors ] );
    ( "edge.wire",
      [
        Fixtures.qcheck_case prop_int_slice_roundtrip;
        Alcotest.test_case "slice bounds" `Quick slice_bounds_checked;
      ] );
    ( "edge.codec",
      [
        Alcotest.test_case "string + bool[] fields" `Quick string_and_bool_array_fields;
        Alcotest.test_case "null string field" `Quick null_string_field;
        Alcotest.test_case "value helpers" `Quick value_introspection_helpers;
      ] );
  ]
