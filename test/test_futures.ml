(* Asynchronous RMI: futures, pipelining and request batching.

   Everything here goes through the Rmi facade — the same surface
   applications use.  The properties: pipelined (and batched) issue
   returns exactly the sequential results in issue order, every remote
   body executes exactly once per logical call (also over lossy links),
   failures surface at await time, and batching pays fewer cost-model
   per-message latencies without touching the byte accounting. *)

module Config = Rmi.Config
module Fabric = Rmi.Fabric
module Node = Rmi.Node
module Future = Rmi.Future
module Value = Rmi.Value
module Metrics = Rmi.Metrics

let meta =
  Rmi.Internals.Class_meta.make [ ("Box", [ ("v", Jir.Types.Tint) ]) ]

let m_double = 1
let m_boom = 2
let m_nested = 3
let m_echo = 4

let box v =
  let b = Value.new_obj ~cls:0 ~nfields:1 in
  b.fields.(0) <- Value.Int v;
  Value.Obj b

let unbox = function
  | Some (Value.Obj o) -> (
      match o.Value.fields.(0) with
      | Value.Int v -> v
      | _ -> Alcotest.fail "bad box field")
  | _ -> Alcotest.fail "no boxed reply"

(* a 2-machine fabric; machine 1 exports "2v+1" and records how many
   times each logical id executed *)
let make_pair ?faults ~config () =
  let metrics = Metrics.create () in
  let fabric =
    Fabric.create ~mode:Fabric.Sync ~n:2 ~meta ~config
      ~plans:(Hashtbl.create 4) ~metrics ?faults ()
  in
  let execs : (int, int) Hashtbl.t = Hashtbl.create 16 in
  Node.export (Fabric.node fabric 1) ~obj:0 ~meth:m_double ~has_ret:true
    (fun args ->
      match args.(0) with
      | Value.Obj o -> (
          match o.Value.fields.(0) with
          | Value.Int v ->
              Hashtbl.replace execs v
                (1 + Option.value ~default:0 (Hashtbl.find_opt execs v));
              Some (box ((2 * v) + 1))
          | _ -> failwith "bad box")
      | _ -> failwith "bad arg");
  Node.export (Fabric.node fabric 1) ~obj:0 ~meth:m_boom ~has_ret:true
    (fun _ -> failwith "kaboom");
  (metrics, fabric, execs)

let dest = Rmi.Remote_ref.make ~machine:1 ~obj:0

let issue caller id =
  Node.call_async caller ~dest ~meth:m_double ~callsite:1 ~has_ret:true
    [| box id |]

(* issue [ids] in windows of [window] async calls, await each window *)
let pipelined_results ~window caller ids =
  let rec go acc = function
    | [] -> List.concat (List.rev acc)
    | ids ->
        let rec split k = function
          | x :: rest when k > 0 ->
              let chunk, tail = split (k - 1) rest in
              (x :: chunk, tail)
          | rest -> ([], rest)
        in
        let chunk, rest = split window ids in
        let futures = List.map (issue caller) chunk in
        go (List.map unbox (Future.all futures) :: acc) rest
  in
  go [] ids

let ids = List.init 20 (fun i -> i + 1)
let expected = List.map (fun v -> (2 * v) + 1) ids

let exactly_once execs ids =
  List.for_all (fun id -> Hashtbl.find_opt execs id = Some 1) ids

(* ------------------------------------------------------------------ *)
(* deterministic cases                                                 *)
(* ------------------------------------------------------------------ *)

let pipelined_matches_sequential_all_configs () =
  List.iter
    (fun base ->
      List.iter
        (fun config ->
          let _, fabric, execs = make_pair ~config () in
          let results = pipelined_results ~window:7 (Fabric.node fabric 0) ids in
          Alcotest.(check (list int))
            (config.Config.name ^ " results") expected results;
          Alcotest.(check bool)
            (config.Config.name ^ " exactly-once") true (exactly_once execs ids))
        [ base; Config.with_batching base ])
    Config.all

let await_order_is_free () =
  let _, fabric, execs = make_pair ~config:Config.class_ () in
  let caller = Fabric.node fabric 0 in
  let futures = List.map (issue caller) ids in
  (* awaiting in reverse: replies resolve whatever future they belong
     to, regardless of which one is being awaited *)
  let reversed = List.rev_map Future.await (List.rev futures) in
  Alcotest.(check (list int)) "reverse await, issue order results" expected
    (List.map unbox reversed);
  Alcotest.(check bool) "exactly-once" true (exactly_once execs ids)

let future_all_preserves_order () =
  let _, fabric, _ = make_pair ~config:(Config.with_batching Config.site) () in
  let caller = Fabric.node fabric 0 in
  let futures = List.map (issue caller) [ 5; 3; 9; 1 ] in
  Alcotest.(check (list int)) "list order = issue order" [ 11; 7; 19; 3 ]
    (List.map unbox (Future.all futures))

let exception_surfaces_at_await () =
  let _, fabric, _ = make_pair ~config:Config.class_ () in
  let caller = Fabric.node fabric 0 in
  (* issue must not raise, even though the handler always will *)
  let boom =
    Node.call_async caller ~dest ~meth:m_boom ~callsite:2 ~has_ret:true [||]
  in
  let fine = issue caller 10 in
  Alcotest.(check int) "later call unaffected" 21 (unbox (Future.await fine));
  Alcotest.(check bool) "await raises Remote_exception" true
    (try
       ignore (Future.await boom);
       false
     with Node.Remote_exception msg -> msg = "kaboom");
  (* a failed future keeps its exception across repeated awaits *)
  Alcotest.(check bool) "failure is sticky" true
    (try
       ignore (Future.await boom);
       false
     with Node.Remote_exception _ -> true)

let local_failure_captured_not_thrown () =
  let _, fabric, _ = make_pair ~config:Config.class_ () in
  let caller = Fabric.node fabric 0 in
  let self = Rmi.Remote_ref.make ~machine:0 ~obj:0 in
  (* machine 0 exports nothing: a local call to a missing method must
     capture No_such_method in the future, not throw at issue time *)
  let f =
    Node.call_async caller ~dest:self ~meth:m_double ~callsite:3 ~has_ret:true
      [| box 1 |]
  in
  Alcotest.(check bool) "raised only at await" true
    (try
       ignore (Future.await f);
       false
     with Node.No_such_method _ -> true)

let peek_is_nonblocking () =
  let _, fabric, _ = make_pair ~config:(Config.with_batching Config.class_) () in
  let caller = Fabric.node fabric 0 in
  let f = issue caller 4 in
  (* poll: peek either already sees the value or resolves it within a
     few pumps; it must never deadlock or raise on a pending future *)
  let rec poll n =
    match Future.peek f with
    | Some v -> v
    | None when n > 0 -> poll (n - 1)
    | None -> Alcotest.fail "peek never resolved"
  in
  Alcotest.(check int) "peeked value" 9 (unbox (poll 100));
  Alcotest.(check int) "await after peek" 9 (unbox (Future.await f))

let nested_callback_while_outstanding () =
  let _, fabric, execs = make_pair ~config:Config.class_ () in
  let caller = Fabric.node fabric 0 in
  let callee = Fabric.node fabric 1 in
  (* machine 0 serves echo; machine 1's nested method calls back into
     machine 0 before replying *)
  Node.export caller ~obj:0 ~meth:m_echo ~has_ret:true (fun args ->
      Some args.(0));
  Node.export callee ~obj:0 ~meth:m_nested ~has_ret:true (fun args ->
      let back = Rmi.Remote_ref.make ~machine:0 ~obj:0 in
      Node.call callee ~dest:back ~meth:m_echo ~callsite:9 ~has_ret:true
        [| args.(0) |]);
  (* several plain futures outstanding, then a nested one: serving the
     callback must not disturb the outstanding table *)
  let plain = List.map (issue caller) [ 1; 2; 3 ] in
  let nested =
    Node.call_async caller ~dest ~meth:m_nested ~callsite:8 ~has_ret:true
      [| box 77 |]
  in
  Alcotest.(check int) "nested echo" 77 (unbox (Future.await nested));
  Alcotest.(check (list int)) "outstanding futures unharmed" [ 3; 5; 7 ]
    (List.map unbox (Future.all plain));
  Alcotest.(check bool) "exactly-once" true (exactly_once execs [ 1; 2; 3 ])

(* batching accounting: same logical traffic, fewer wire envelopes,
   strictly less modeled time; sequential runs stay untouched *)
let batching_reduces_messages_not_bytes () =
  let run config issue_mode =
    let metrics, fabric, _ = make_pair ~config () in
    let caller = Fabric.node fabric 0 in
    let results =
      match issue_mode with
      | `Sequential ->
          List.map
            (fun id ->
              unbox
                (Node.call caller ~dest ~meth:m_double ~callsite:1
                   ~has_ret:true [| box id |]))
            ids
      | `Pipelined window -> pipelined_results ~window caller ids
    in
    (results, Metrics.snapshot metrics)
  in
  let seq_results, seq = run Config.class_ `Sequential in
  let pip_results, pip = run (Config.with_batching Config.class_) (`Pipelined 10) in
  Alcotest.(check (list int)) "same results" seq_results pip_results;
  Alcotest.(check int) "sequential: 2 msgs per call"
    (2 * List.length ids) seq.Metrics.msgs_sent;
  Alcotest.(check int) "same logical bytes" seq.Metrics.bytes_sent
    pip.Metrics.bytes_sent;
  Alcotest.(check bool) "fewer wire envelopes" true
    (pip.Metrics.msgs_sent < seq.Metrics.msgs_sent);
  Alcotest.(check bool) "batches counted" true (pip.Metrics.batches_sent > 0);
  Alcotest.(check bool) "window depth observed" true
    (pip.Metrics.outstanding_hwm >= 10);
  Alcotest.(check int) "sequential runs never batch" 0 seq.Metrics.batches_sent;
  let model = Rmi.Costmodel.myrinet_2003 in
  Alcotest.(check bool) "modeled seconds shrink" true
    (Rmi.Costmodel.modeled_seconds model pip
    < Rmi.Costmodel.modeled_seconds model seq)

(* ------------------------------------------------------------------ *)
(* property: lossy links, batched pipelined issue                      *)
(* ------------------------------------------------------------------ *)

let reliable_batched = Config.with_batching (Config.with_reliable Config.class_)

let check_seed seed =
  let faults = Rmi.Fault_sim.create ~seed ~n:2 Rmi.Fault_sim.default_lossy in
  let _, fabric, execs = make_pair ~faults ~config:reliable_batched () in
  let results = pipelined_results ~window:6 (Fabric.node fabric 0) ids in
  results = expected && exactly_once execs ids

let prop_faulty_pipelined_batched =
  QCheck.Test.make
    ~name:"300 fault seeds: batched pipelined = sequential, exactly-once"
    ~count:300
    QCheck.(int_bound 1_000_000)
    check_seed

let fixed_seed_regression () =
  Alcotest.(check bool) "seed 90210 recovers" true (check_seed 90210)

let suite =
  [
    ( "futures",
      [
        Alcotest.test_case "pipelined = sequential (all configs +/- batching)"
          `Quick pipelined_matches_sequential_all_configs;
        Alcotest.test_case "await order is free" `Quick await_order_is_free;
        Alcotest.test_case "Future.all preserves issue order" `Quick
          future_all_preserves_order;
        Alcotest.test_case "exceptions surface at await" `Quick
          exception_surfaces_at_await;
        Alcotest.test_case "local failure captured, not thrown" `Quick
          local_failure_captured_not_thrown;
        Alcotest.test_case "peek is nonblocking" `Quick peek_is_nonblocking;
        Alcotest.test_case "nested callback with futures outstanding" `Quick
          nested_callback_while_outstanding;
        Alcotest.test_case "batching: fewer envelopes, same bytes" `Quick
          batching_reduces_messages_not_bytes;
        Fixtures.qcheck_case prop_faulty_pipelined_batched;
        Alcotest.test_case "fixed-seed regression (90210)" `Quick
          fixed_seed_regression;
      ] );
  ]
