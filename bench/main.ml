(* Benchmark harness.

   Part 1 (Bechamel): one Test.make per paper table — the table's RMI
   unit of work measured under the "class" baseline and under the fully
   optimized "site + reuse + cycle" configuration — plus ablation
   benches for the design choices DESIGN.md calls out (dispatch,
   cycle-table cost, reuse, wire type-information encoding).

   Part 2: the paper-style Tables 1-8, paper-vs-measured, at the small
   workload scale (use bin/main.exe --scale paper for full sizes). *)

open Bechamel
open Toolkit
module Config = Rmi.Config
module Fabric = Rmi.Fabric
module Node = Rmi.Node
module Value = Rmi.Value
module Codec = Rmi.Internals.Codec
module Metrics = Rmi.Metrics
module Plan = Rmi.Internals.Plan
module Msgbuf = Rmi.Internals.Msgbuf

(* ------------------------------------------------------------------ *)
(* per-table RMI units                                                 *)
(* ------------------------------------------------------------------ *)

(* builds a 2-machine Sync fabric for an app and returns a one-RMI
   closure plus the fabric's metrics; all setup happens outside the
   measured region *)
let rmi_unit_m (compiled : Rmi_apps.App_common.compiled) ~config ~export ~call =
  let metrics = Metrics.create () in
  let fabric =
    Fabric.create ~mode:Fabric.Sync ~n:2 ~meta:compiled.meta ~config
      ~plans:compiled.plans ~metrics ()
  in
  export fabric;
  let caller = Fabric.node fabric 0 in
  ((fun () -> call caller), metrics)

let rmi_unit compiled ~config ~export ~call =
  fst (rmi_unit_m compiled ~config ~export ~call)

let meth_named (compiled : Rmi_apps.App_common.compiled) name =
  Jfront.Lower.method_named compiled.Rmi_apps.App_common.prog name

let list_unit_m config =
  let compiled = Rmi_apps.Linked_list.compiled () in
  let meth = meth_named compiled "Foo.send" in
  let site = Rmi_apps.Linked_list.callsite () in
  let head =
    let rec go acc k =
      if k = 0 then acc
      else begin
        let c = Value.new_obj ~cls:0 ~nfields:1 in
        c.Value.fields.(0) <- acc;
        go (Value.Obj c) (k - 1)
      end
    in
    go Value.Null 100
  in
  rmi_unit_m compiled ~config
    ~export:(fun fabric ->
      Node.export (Fabric.node fabric 1) ~obj:0 ~meth ~has_ret:false (fun _ ->
          None))
    ~call:(fun caller ->
      ignore
        (Node.call caller
           ~dest:(Rmi.Remote_ref.make ~machine:1 ~obj:0)
           ~meth ~callsite:site ~has_ret:false [| head |]))

let list_unit config = fst (list_unit_m config)

let array_unit_m config =
  let compiled = Rmi_apps.Array_bench.compiled () in
  let meth = meth_named compiled "ArrayBench.send" in
  let site = Rmi_apps.Array_bench.callsite () in
  let matrix =
    let outer = Value.new_rarr (Jir.Types.Tarray Jir.Types.Tdouble) 16 in
    for i = 0 to 15 do
      outer.Value.ra.(i) <- Value.Darr (Value.new_darr 16)
    done;
    Value.Rarr outer
  in
  rmi_unit_m compiled ~config
    ~export:(fun fabric ->
      Node.export (Fabric.node fabric 1) ~obj:0 ~meth ~has_ret:false (fun _ ->
          None))
    ~call:(fun caller ->
      ignore
        (Node.call caller
           ~dest:(Rmi.Remote_ref.make ~machine:1 ~obj:0)
           ~meth ~callsite:site ~has_ret:false [| matrix |]))

let array_unit config = fst (array_unit_m config)

let lu_unit config =
  let compiled = Rmi_apps.Lu.compiled () in
  let meth = meth_named compiled "Worker.update" in
  let site = Rmi_apps.Lu.callsite () in
  let block () =
    let outer = Value.new_rarr (Jir.Types.Tarray Jir.Types.Tdouble) 16 in
    for i = 0 to 15 do
      let inner = Value.new_darr 16 in
      for j = 0 to 15 do
        inner.Value.d.(j) <- float_of_int ((i * 16) + j)
      done;
      outer.Value.ra.(i) <- Value.Darr inner
    done;
    Value.Rarr outer
  in
  let a = block () and col = block () and row = block () in
  rmi_unit compiled ~config
    ~export:(fun fabric ->
      Node.export (Fabric.node fabric 1) ~obj:0 ~meth ~has_ret:true
        (fun args -> Some args.(0)))
    ~call:(fun caller ->
      ignore
        (Node.call caller
           ~dest:(Rmi.Remote_ref.make ~machine:1 ~obj:0)
           ~meth ~callsite:site ~has_ret:true [| a; col; row |]))

let superopt_unit config =
  let compiled = Rmi_apps.Superopt.compiled () in
  let meth = meth_named compiled "Tester.accept" in
  let accept_site, _ = Rmi_apps.Superopt.callsites () in
  let candidate =
    (* Prog{id; insns=[3 x Insn{op; 3 x Operand}]}: class ids in the
       superoptimizer model are 0=Operand 1=Insn 2=Prog *)
    let operand v =
      let o = Value.new_obj ~cls:0 ~nfields:1 in
      o.Value.fields.(0) <- Value.Int v;
      Value.Obj o
    in
    let insns = Value.new_rarr (Jir.Types.Tobject 1) 3 in
    for i = 0 to 2 do
      let ins = Value.new_obj ~cls:1 ~nfields:4 in
      ins.Value.fields.(0) <- Value.Int i;
      ins.Value.fields.(1) <- operand 0;
      ins.Value.fields.(2) <- operand 1;
      ins.Value.fields.(3) <- operand 2;
      insns.Value.ra.(i) <- Value.Obj ins
    done;
    let p = Value.new_obj ~cls:2 ~nfields:2 in
    p.Value.fields.(0) <- Value.Int 7;
    p.Value.fields.(1) <- Value.Rarr insns;
    Value.Obj p
  in
  rmi_unit compiled ~config
    ~export:(fun fabric ->
      Node.export (Fabric.node fabric 1) ~obj:0 ~meth ~has_ret:false (fun _ ->
          None))
    ~call:(fun caller ->
      ignore
        (Node.call caller
           ~dest:(Rmi.Remote_ref.make ~machine:1 ~obj:0)
           ~meth ~callsite:accept_site ~has_ret:false [| candidate |]))

let web_unit config =
  let compiled = Rmi_apps.Webserver.compiled () in
  let meth = meth_named compiled "Slave.get_page" in
  let site = Rmi_apps.Webserver.callsite () in
  let url =
    let chars = Value.new_iarr 32 in
    let u = Value.new_obj ~cls:0 ~nfields:1 in
    u.Value.fields.(0) <- Value.Iarr chars;
    Value.Obj u
  in
  let page =
    let data = Value.new_iarr 256 in
    let p = Value.new_obj ~cls:1 ~nfields:1 in
    p.Value.fields.(0) <- Value.Iarr data;
    Value.Obj p
  in
  rmi_unit compiled ~config
    ~export:(fun fabric ->
      Node.export (Fabric.node fabric 1) ~obj:0 ~meth ~has_ret:true (fun _ ->
          Some page))
    ~call:(fun caller ->
      ignore
        (Node.call caller
           ~dest:(Rmi.Remote_ref.make ~machine:1 ~obj:0)
           ~meth ~callsite:site ~has_ret:true [| url |]))

(* ------------------------------------------------------------------ *)
(* pipelined units: one window of async calls per measured run         *)
(* ------------------------------------------------------------------ *)

let list_pipelined_unit config ~window =
  let compiled = Rmi_apps.Linked_list.compiled () in
  let meth = meth_named compiled "Foo.send" in
  let site = Rmi_apps.Linked_list.callsite () in
  let head =
    let rec go acc k =
      if k = 0 then acc
      else begin
        let c = Value.new_obj ~cls:0 ~nfields:1 in
        c.Value.fields.(0) <- acc;
        go (Value.Obj c) (k - 1)
      end
    in
    go Value.Null 100
  in
  rmi_unit compiled ~config
    ~export:(fun fabric ->
      Node.export (Fabric.node fabric 1) ~obj:0 ~meth ~has_ret:false (fun _ ->
          None))
    ~call:(fun caller ->
      let dest = Rmi.Remote_ref.make ~machine:1 ~obj:0 in
      let futures =
        List.init window (fun _ ->
            Node.call_async caller ~dest ~meth ~callsite:site ~has_ret:false
              [| head |])
      in
      ignore (Node.Future.all futures : Value.t option list))

let array_pipelined_unit config ~window =
  let compiled = Rmi_apps.Array_bench.compiled () in
  let meth = meth_named compiled "ArrayBench.send" in
  let site = Rmi_apps.Array_bench.callsite () in
  let matrix =
    let outer = Value.new_rarr (Jir.Types.Tarray Jir.Types.Tdouble) 16 in
    for i = 0 to 15 do
      outer.Value.ra.(i) <- Value.Darr (Value.new_darr 16)
    done;
    Value.Rarr outer
  in
  rmi_unit compiled ~config
    ~export:(fun fabric ->
      Node.export (Fabric.node fabric 1) ~obj:0 ~meth ~has_ret:false (fun _ ->
          None))
    ~call:(fun caller ->
      let dest = Rmi.Remote_ref.make ~machine:1 ~obj:0 in
      let futures =
        List.init window (fun _ ->
            Node.call_async caller ~dest ~meth ~callsite:site ~has_ret:false
              [| matrix |])
      in
      ignore (Node.Future.all futures : Value.t option list))

(* ------------------------------------------------------------------ *)
(* ablation micro-benchmarks                                           *)
(* ------------------------------------------------------------------ *)

let ablation_meta =
  Rmi.Internals.Class_meta.make
    [ ("Cell", [ ("next", Jir.Types.Tobject 0); ("v", Jir.Types.Tint) ]) ]

let deep_chain n =
  let rec go acc k =
    if k = 0 then acc
    else begin
      let c = Value.new_obj ~cls:0 ~nfields:2 in
      c.Value.fields.(0) <- acc;
      c.Value.fields.(1) <- Value.Int k;
      go (Value.Obj c) (k - 1)
    end
  in
  go Value.Null n

(* the recursive call-site plan for the chain: dispatch-free, untagged *)
let chain_plan_defs =
  [| Plan.S_obj { cls = 0; fields = [| Plan.S_ref 0; Plan.S_int |] } |]

let ablation_dispatch_dyn () =
  let v = deep_chain 64 in
  let m = Metrics.create () in
  fun () ->
    let w = Msgbuf.create_writer () in
    Codec.write_dyn (Codec.make_wctx ablation_meta m ~cycle:true) w v

let ablation_dispatch_plan () =
  let v = deep_chain 64 in
  let m = Metrics.create () in
  fun () ->
    let w = Msgbuf.create_writer () in
    Codec.write_step
      (Codec.make_wctx ~defs:chain_plan_defs ablation_meta m ~cycle:true)
      w (Plan.S_ref 0) v

let big_array_value () =
  let outer = Value.new_rarr (Jir.Types.Tarray Jir.Types.Tdouble) 32 in
  for i = 0 to 31 do
    outer.Value.ra.(i) <- Value.Darr (Value.new_darr 32)
  done;
  Value.Rarr outer

let array_step = Plan.S_obj_array { elem = Plan.S_double_array }

let ablation_cycletable on () =
  let v = big_array_value () in
  let m = Metrics.create () in
  fun () ->
    let w = Msgbuf.create_writer () in
    Codec.write_step (Codec.make_wctx ablation_meta m ~cycle:on) w array_step v

let ablation_reuse with_cand () =
  let v = big_array_value () in
  let m = Metrics.create () in
  let w = Msgbuf.create_writer () in
  Codec.write_step (Codec.make_wctx ablation_meta m ~cycle:false) w array_step v;
  let payload = Msgbuf.contents w in
  let cand = if with_cand then big_array_value () else Value.Null in
  fun () ->
    let r = Msgbuf.reader_of_bytes payload in
    ignore
      (Codec.read_step
         (Codec.make_rctx ablation_meta m ~cycle:false)
         r array_step ~cand)

let ablation_dispatch_compiled () =
  let v = deep_chain 64 in
  let m = Metrics.create () in
  let compiled = Codec.compile_write ~defs:chain_plan_defs (Plan.S_ref 0) in
  fun () ->
    let w = Msgbuf.create_writer () in
    compiled (Codec.make_wctx ~defs:chain_plan_defs ablation_meta m ~cycle:true) w v

let ablation_wire_introspect () =
  let v = deep_chain 64 in
  let m = Metrics.create () in
  fun () ->
    let w = Msgbuf.create_writer () in
    Rmi.Internals.Introspect.write (Rmi.Internals.Introspect.make_wctx ablation_meta m) w v

(* ------------------------------------------------------------------ *)
(* BENCH_wire.json: machine-readable zero-copy wire-path numbers       *)
(* ------------------------------------------------------------------ *)

(* One (workload, framing-mode) measurement: wall-clock ns per RMI plus
   the allocation telemetry the zero-copy substitution is about. *)
type wire_row = {
  wb_workload : string;  (* "chain100" / "matrix16x16" *)
  wb_mode : string;  (* "<transport>/<framing>" *)
  wb_ns_per_op : float;
  wb_copied_per_call : float;  (* Metrics.bytes_copied delta / calls *)
  wb_minor_per_call : float;  (* Gc.minor_words delta / calls *)
  wb_major_per_call : float;  (* Gc.quick_stat major_words delta / calls *)
  wb_promoted_per_call : float;  (* Gc.quick_stat promoted_words delta / calls *)
  wb_pool_hits : int;
  wb_pool_misses : int;
}

let wire_measure ~calls (call, metrics) =
  (* warmup covers plan compilation, pool priming, first envelopes *)
  for _ = 1 to max 8 (calls / 8) do
    call ()
  done;
  let s0 = Metrics.snapshot metrics in
  let g0 = Gc.quick_stat () in
  let t0 = Unix.gettimeofday () in
  for _ = 1 to calls do
    call ()
  done;
  let t1 = Unix.gettimeofday () in
  let g1 = Gc.quick_stat () in
  let s1 = Metrics.snapshot metrics in
  let fcalls = float_of_int calls in
  ( (t1 -. t0) *. 1e9 /. fcalls,
    float_of_int (s1.Metrics.bytes_copied - s0.Metrics.bytes_copied) /. fcalls,
    (g1.Gc.minor_words -. g0.Gc.minor_words) /. fcalls,
    (g1.Gc.major_words -. g0.Gc.major_words) /. fcalls,
    (g1.Gc.promoted_words -. g0.Gc.promoted_words) /. fcalls,
    s1.Metrics.pool_hits - s0.Metrics.pool_hits,
    s1.Metrics.pool_misses - s0.Metrics.pool_misses )

let wire_modes =
  let base = Config.site_reuse_cycle in
  [
    ("raw/legacy", Config.legacy_copy base);
    ("raw/zero-copy", Config.with_zero_copy true base);
    ("reliable/legacy", Config.legacy_copy (Config.with_reliable base));
    ("reliable/zero-copy", Config.with_zero_copy true (Config.with_reliable base));
  ]

let wire_rows ~calls =
  let workloads =
    [ ("chain100", list_unit_m); ("matrix16x16", array_unit_m) ]
  in
  List.concat_map
    (fun (wname, unit_m) ->
      List.map
        (fun (mname, config) ->
          let ns, copied, minor, major, promoted, hits, misses =
            wire_measure ~calls (unit_m config)
          in
          {
            wb_workload = wname;
            wb_mode = mname;
            wb_ns_per_op = ns;
            wb_copied_per_call = copied;
            wb_minor_per_call = minor;
            wb_major_per_call = major;
            wb_promoted_per_call = promoted;
            wb_pool_hits = hits;
            wb_pool_misses = misses;
          })
        wire_modes)
    workloads

let wire_json ~calls rows =
  let row r =
    Printf.sprintf
      "    { \"workload\": %S, \"mode\": %S, \"ns_per_op\": %.1f, \
       \"bytes_copied_per_call\": %.1f, \"minor_words_per_call\": %.1f, \
       \"major_words_per_call\": %.1f, \"promoted_words_per_call\": %.1f, \
       \"pool_hits\": %d, \"pool_misses\": %d }"
      r.wb_workload r.wb_mode r.wb_ns_per_op r.wb_copied_per_call
      r.wb_minor_per_call r.wb_major_per_call r.wb_promoted_per_call
      r.wb_pool_hits r.wb_pool_misses
  in
  Printf.sprintf
    "{\n  \"benchmark\": \"wire\",\n  \"calls\": %d,\n  \"rows\": [\n%s\n  ]\n}\n"
    calls
    (String.concat ",\n" (List.map row rows))

let run_wire ~calls path =
  let rows = wire_rows ~calls in
  let oc = open_out path in
  output_string oc (wire_json ~calls rows);
  close_out oc;
  print_endline "Zero-copy wire path (wall clock + allocation telemetry):";
  print_endline
    (Rmi.Ascii_table.render
       ~headers:
         [
           "workload"; "mode"; "ns/op"; "copied B/call"; "minor w/call";
           "major w/call"; "promoted w/call"; "pool hit"; "pool miss";
         ]
       (List.map
          (fun r ->
            [
              r.wb_workload; r.wb_mode;
              Printf.sprintf "%.0f" r.wb_ns_per_op;
              Printf.sprintf "%.1f" r.wb_copied_per_call;
              Printf.sprintf "%.1f" r.wb_minor_per_call;
              Printf.sprintf "%.1f" r.wb_major_per_call;
              Printf.sprintf "%.1f" r.wb_promoted_per_call;
              string_of_int r.wb_pool_hits;
              string_of_int r.wb_pool_misses;
            ])
          rows));
  Printf.printf "wrote %s\n" path

(* ------------------------------------------------------------------ *)
(* runner                                                              *)
(* ------------------------------------------------------------------ *)

let tests ~pipeline ~batch ~window =
  let t name f = Test.make ~name (Staged.stage (f ())) in
  (if pipeline then
     let label suffix = Printf.sprintf "pipeline:%s/window%d" suffix window in
     [
       t (label "list") (fun () ->
           list_pipelined_unit Config.site_reuse_cycle ~window);
       t (label "array") (fun () ->
           array_pipelined_unit Config.site_reuse_cycle ~window);
     ]
     @
     if batch then
       [
         t (label "list+batch") (fun () ->
             list_pipelined_unit
               (Config.with_batching Config.site_reuse_cycle)
               ~window);
         t (label "array+batch") (fun () ->
             array_pipelined_unit
               (Config.with_batching Config.site_reuse_cycle)
               ~window);
       ]
     else []
   else [])
  @ [
    (* one Test.make per paper table: baseline vs fully optimized *)
    t "table1:list/class" (fun () -> list_unit Config.class_);
    t "table1:list/site+reuse+cycle" (fun () -> list_unit Config.site_reuse_cycle);
    t "table2:array/class" (fun () -> array_unit Config.class_);
    t "table2:array/site+reuse+cycle" (fun () -> array_unit Config.site_reuse_cycle);
    t "table3+4:lu-update/class" (fun () -> lu_unit Config.class_);
    t "table3+4:lu-update/site+reuse+cycle" (fun () -> lu_unit Config.site_reuse_cycle);
    t "table5+6:superopt-accept/class" (fun () -> superopt_unit Config.class_);
    t "table5+6:superopt-accept/site+reuse+cycle" (fun () ->
        superopt_unit Config.site_reuse_cycle);
    t "table7+8:web-get-page/class" (fun () -> web_unit Config.class_);
    t "table7+8:web-get-page/site+reuse+cycle" (fun () ->
        web_unit Config.site_reuse_cycle);
    (* ablations *)
    t "ablation:dispatch/dyn" ablation_dispatch_dyn;
    t "ablation:dispatch/plan-interpreted" ablation_dispatch_plan;
    t "ablation:dispatch/plan-compiled" ablation_dispatch_compiled;
    t "ablation:cycletable/on" (fun () -> ablation_cycletable true ());
    t "ablation:cycletable/off" (fun () -> ablation_cycletable false ());
    t "ablation:reuse/fresh" (fun () -> ablation_reuse false ());
    t "ablation:reuse/cached" (fun () -> ablation_reuse true ());
    t "ablation:wire/introspect" ablation_wire_introspect;
    t "ablation:wire/class-tags" ablation_dispatch_dyn;
  ]

let run_benchmarks ~pipeline ~batch ~window () =
  let ols =
    Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.25) () in
  let raw_results =
    Benchmark.all cfg instances
      (Test.make_grouped ~name:"rmi" (tests ~pipeline ~batch ~window))
  in
  let results = Analyze.all ols Instance.monotonic_clock raw_results in
  let rows =
    Hashtbl.fold
      (fun name ols acc ->
        let ns =
          match Analyze.OLS.estimates ols with
          | Some (e :: _) -> e
          | Some [] | None -> Float.nan
        in
        (name, ns) :: acc)
      results []
    |> List.sort compare
  in
  print_endline "Bechamel micro-benchmarks (ns per RMI / per operation):";
  print_endline
    (Rmi.Ascii_table.render
       ~headers:[ "benchmark"; "ns/run" ]
       (List.map (fun (n, ns) -> [ n; Printf.sprintf "%.0f" ns ]) rows))

let run_tables () =
  let module E = Rmi.Experiment in
  let timing t =
    print_endline (E.render_timing t);
    print_endline "shape vs paper:";
    print_endline (E.shape_summary t);
    print_newline ()
  in
  timing (E.table1 ());
  timing (E.table2 ());
  let t3 = E.table3 () in
  timing t3;
  print_endline
    (E.stats_table ~id:"table4" ~title:"Table 4: LU runtime statistics" t3
       Rmi.Paper_data.table4_stats);
  let t5 = E.table5 () in
  timing t5;
  print_endline
    (E.stats_table ~id:"table6"
       ~title:"Table 6: Superoptimizer runtime statistics" t5
       Rmi.Paper_data.table6_stats);
  let t7 = E.table7 () in
  timing t7;
  print_endline
    (E.stats_table ~id:"table8" ~title:"Table 8: Webserver runtime statistics" t7
       Rmi.Paper_data.table8_stats)

let main pipeline batch window wire_json_path =
  match wire_json_path with
  | Some path -> run_wire ~calls:1024 path
  | None ->
      run_benchmarks ~pipeline ~batch ~window ();
      print_newline ();
      if pipeline then begin
        print_endline "=== Pipelining / batching comparison ===";
        print_newline ();
        List.iter
          (fun report ->
            print_endline (Rmi.Experiment.render_pipeline report);
            print_newline ())
          (Rmi.Experiment.pipeline_compare ~window ())
      end;
      print_endline
        "=== Paper tables (small scale; --scale paper via bin/main.exe) ===";
      print_newline ();
      run_tables ()

let () =
  let open Cmdliner in
  let info =
    Cmd.info "rmi-bench"
      ~doc:
        "Bechamel micro-benchmarks and paper-table reproduction.  \
         $(b,--pipeline) adds futures-based windows (and the \
         pipelining/batching comparison tables); $(b,--batch) adds the \
         coalescing variants."
  in
  let wire_json_arg =
    let doc =
      "Skip the bechamel suite: measure the Table 1/2 message shapes under \
       legacy and zero-copy framing over raw and reliable links, and write \
       the machine-readable rows (ns/op, copied bytes per call, minor words \
       per call, pool traffic) to $(docv)."
    in
    Arg.(value & opt (some string) None & info [ "wire-json" ] ~docv:"PATH" ~doc)
  in
  let term =
    Term.(
      const main $ Rmi.Cli.pipeline_arg $ Rmi.Cli.batch_arg $ Rmi.Cli.window_arg
      $ wire_json_arg)
  in
  exit (Cmd.eval (Cmd.v info term))
